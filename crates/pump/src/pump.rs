//! The ReqPump implementation: registration, concurrency-limited dispatch,
//! result storage (`ReqPumpHash`), and completion signalling.
//!
//! # Completion delivery
//!
//! Completion signalling is *targeted*: each [`ReqPump::wait_any`] caller
//! registers an interest record for exactly the calls it waits on, and
//! completion wakes only the waiters interested in the finished call —
//! there is no broadcast condvar that every consumer re-checks on every
//! completion. The wakeup carries the completed [`CallId`], so a woken
//! waiter returns immediately instead of re-scanning its call set under
//! the pump lock. Statistics are plain atomics, read without locking, and
//! [`ReqPump::take_completed`] drains any number of finished calls in one
//! lock acquisition.

use crate::service::{SearchRequest, SearchResult, SearchService, ServiceReply};
use parking_lot::{Condvar, Mutex, RwLock};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use wsq_common::{CallId, Result, WsqError};
use wsq_obs::{EventKind, Obs};

/// How launched calls are driven to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchMode {
    /// One background thread drives all in-flight calls via a deadline heap
    /// (services must compute cheaply and declare simulated latency). This
    /// is the paper's preferred event-driven design (§4.2).
    EventLoop,
    /// A pool of `n` worker threads, for services that genuinely block.
    ThreadPool(usize),
}

/// ReqPump configuration.
#[derive(Debug, Clone)]
pub struct PumpConfig {
    /// Maximum calls in flight across all destinations. The paper notes an
    /// administrator configures this to avoid exhausting local resources.
    pub max_concurrent: usize,
    /// Per-destination in-flight caps ("an unwelcome number of simultaneous
    /// requests" guard). Destinations absent from the map use
    /// `default_per_destination`.
    pub per_destination: HashMap<String, usize>,
    /// Default per-destination cap.
    pub default_per_destination: usize,
    /// Merge identical in-flight requests into one network call.
    pub coalesce: bool,
    /// Submission-window size for the event-loop dispatcher: up to this
    /// many launchable requests for **one destination** are handed to the
    /// service as a single [`SearchService::execute_batch`] dispatch.
    /// `1` (the default) keeps the per-request dispatch path; per-call
    /// concurrency accounting, caps, and `Launched` events are identical
    /// either way. Ignored by [`DispatchMode::ThreadPool`] workers, which
    /// are inherently per-request.
    pub submission_window: usize,
    /// Dispatcher choice.
    pub dispatch: DispatchMode,
    /// Observability sink for call-lifecycle events and metrics
    /// ([`Obs::disabled`] by default — a pure no-op).
    pub obs: Obs,
}

impl Default for PumpConfig {
    fn default() -> Self {
        PumpConfig {
            max_concurrent: 64,
            per_destination: HashMap::new(),
            default_per_destination: 64,
            coalesce: true,
            submission_window: 1,
            dispatch: DispatchMode::EventLoop,
            obs: Obs::disabled(),
        }
    }
}

/// Cumulative pump statistics (a snapshot of the atomic counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PumpStats {
    /// Calls registered (including coalesced registrations).
    pub registered: u64,
    /// Distinct calls actually launched to a service.
    pub launched: u64,
    /// Calls completed.
    pub completed: u64,
    /// Registrations satisfied by attaching to an existing call.
    pub coalesced: u64,
    /// Highest number of simultaneously in-flight calls observed.
    pub peak_in_flight: u64,
    /// Highest queue length observed while waiting for capacity.
    pub peak_queued: u64,
    /// Windowed dispatches: `execute_batch` handoffs covering two or more
    /// requests (per-request dispatches are not counted).
    pub batches: u64,
}

/// Lock-free statistic counters; `stats()` never touches the state mutex.
#[derive(Default)]
struct Counters {
    registered: AtomicU64,
    launched: AtomicU64,
    completed: AtomicU64,
    coalesced: AtomicU64,
    peak_in_flight: AtomicU64,
    peak_queued: AtomicU64,
    batches: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> PumpStats {
        PumpStats {
            registered: self.registered.load(Ordering::Relaxed),
            launched: self.launched.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            peak_in_flight: self.peak_in_flight.load(Ordering::Relaxed),
            peak_queued: self.peak_queued.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
        }
    }
}

/// What a sleeping waiter is woken with.
#[derive(Debug, Clone, Copy)]
enum Wake {
    /// This call completed (its result is in the store, unless every
    /// registrant released it first).
    Done(CallId),
    /// The pump shut down; stop waiting.
    Shutdown,
}

/// One blocked `wait_any` caller. The waiter sleeps on its own condvar;
/// `complete` delivers the finished id directly into `slot`, so the woken
/// thread never re-scans its call set.
#[derive(Default)]
struct Waiter {
    slot: Mutex<Option<Wake>>,
    cv: Condvar,
}

impl Waiter {
    /// Deliver `wake` unless another completion got here first.
    fn wake(&self, wake: Wake) {
        let mut slot = self.slot.lock();
        if slot.is_none() {
            *slot = Some(wake);
            self.cv.notify_one();
        }
    }

    fn sleep(&self) -> Wake {
        let mut slot = self.slot.lock();
        loop {
            if let Some(wake) = *slot {
                return wake;
            }
            self.cv.wait(&mut slot);
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CallState {
    Queued,
    InFlight,
    Done,
}

struct CallMeta {
    req: SearchRequest,
    refs: usize,
    state: CallState,
    /// When the call was registered (queue-delay histogram anchor).
    registered_at: Instant,
    /// When the call was launched, once it has been.
    launched_at: Option<Instant>,
}

#[derive(Default)]
struct State {
    next_call: u64,
    queue: VecDeque<CallId>,
    meta: HashMap<CallId, CallMeta>,
    /// `ReqPumpHash`: completed results keyed by call id.
    results: HashMap<CallId, Result<SearchResult>>,
    /// Coalescing index over calls that are still known to the pump.
    index: HashMap<SearchRequest, CallId>,
    /// Waiters blocked on each not-yet-completed call.
    interest: HashMap<CallId, Vec<Arc<Waiter>>>,
    active_total: usize,
    active_per_dest: HashMap<String, usize>,
    shutdown: bool,
}

struct Shared {
    config: PumpConfig,
    services: RwLock<HashMap<String, Arc<dyn SearchService>>>,
    state: Mutex<State>,
    /// Wakes the dispatcher (new work / capacity freed / shutdown).
    work_cv: Condvar,
    stats: Counters,
}

/// The global asynchronous request manager. See the crate docs.
pub struct ReqPump {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl ReqPump {
    /// Create a pump with the given configuration and no services; register
    /// engines with [`ReqPump::register_service`] before issuing calls.
    pub fn new(config: PumpConfig) -> Arc<Self> {
        let shared = Arc::new(Shared {
            config: config.clone(),
            services: RwLock::new(HashMap::new()),
            state: Mutex::new(State::default()),
            work_cv: Condvar::new(),
            stats: Counters::default(),
        });
        let mut workers = Vec::new();
        match config.dispatch {
            DispatchMode::EventLoop => {
                let s = shared.clone();
                workers.push(
                    std::thread::Builder::new()
                        .name("reqpump-loop".into())
                        .spawn(move || event_loop(s))
                        .expect("spawn reqpump loop"),
                );
            }
            DispatchMode::ThreadPool(n) => {
                for i in 0..n.max(1) {
                    let s = shared.clone();
                    workers.push(
                        std::thread::Builder::new()
                            .name(format!("reqpump-worker-{i}"))
                            .spawn(move || worker_loop(s))
                            .expect("spawn reqpump worker"),
                    );
                }
            }
        }
        Arc::new(ReqPump {
            shared,
            workers: Mutex::new(workers),
        })
    }

    /// Convenience: a pump with default config and one service.
    pub fn with_service(name: &str, service: Arc<dyn SearchService>) -> Arc<Self> {
        let pump = Self::new(PumpConfig::default());
        pump.register_service(name, service);
        pump
    }

    /// Register (or replace) the service handling destination `name`.
    pub fn register_service(&self, name: &str, service: Arc<dyn SearchService>) {
        self.shared
            .services
            .write()
            .insert(name.to_string(), service);
    }

    /// Register an external call and return its id immediately. The call is
    /// queued (respecting concurrency limits) and executed asynchronously.
    ///
    /// With coalescing enabled, an identical request already known to the
    /// pump returns the existing id with its reference count bumped.
    ///
    /// # Example
    ///
    /// ```
    /// use std::sync::Arc;
    /// use wsq_pump::{
    ///     ReqPump, RequestKind, SearchRequest, SearchResult, SearchService, ServiceReply,
    /// };
    ///
    /// /// A toy engine: the "page count" is the expression's length.
    /// struct Len;
    /// impl SearchService for Len {
    ///     fn execute(&self, req: &SearchRequest) -> ServiceReply {
    ///         ServiceReply::instant(SearchResult::Count(req.expr.len() as u64))
    ///     }
    /// }
    ///
    /// let pump = ReqPump::with_service("AV", Arc::new(Len));
    /// let call = pump.register(SearchRequest {
    ///     engine: "AV".into(),
    ///     expr: "Colorado".into(),
    ///     kind: RequestKind::Count,
    /// })?;
    /// // `register` returned without waiting; the result arrives later.
    /// assert_eq!(pump.wait(call)?.count(), Some(8));
    /// pump.release(call); // every registrant releases its reference
    /// # Ok::<(), wsq_common::WsqError>(())
    /// ```
    pub fn register(&self, req: SearchRequest) -> Result<CallId> {
        let mut st = self.shared.state.lock();
        let cid = self.register_locked(&mut st, req)?;
        drop(st);
        self.shared.work_cv.notify_all();
        Ok(cid)
    }

    /// Register a whole burst of requests under **one** state-lock
    /// acquisition, waking the dispatcher once at the end. Semantically
    /// identical to calling [`ReqPump::register`] once per request (same
    /// coalescing, same fail-fast on unknown engines, same ids), but a
    /// prefetching scan issuing `depth` calls pays one lock round instead
    /// of `depth`.
    ///
    /// Fails atomically only on shutdown: requests registered before the
    /// shutdown flag was observed keep their ids (the caller must release
    /// any ids it obtained if it aborts).
    pub fn register_batch(&self, reqs: Vec<SearchRequest>) -> Result<Vec<CallId>> {
        let mut st = self.shared.state.lock();
        let mut ids = Vec::with_capacity(reqs.len());
        for req in reqs {
            ids.push(self.register_locked(&mut st, req)?);
        }
        drop(st);
        self.shared.work_cv.notify_all();
        Ok(ids)
    }

    /// Whether identical in-flight requests coalesce onto one call.
    /// Prefetching callers check this: with coalescing off, an eager
    /// registration plus the later demand-side registration would issue
    /// the same request twice.
    pub fn coalescing_enabled(&self) -> bool {
        self.shared.config.coalesce
    }

    /// The registration body, run under the already-held state lock.
    /// Does **not** notify the dispatcher — callers notify once after
    /// dropping the lock.
    fn register_locked(&self, st: &mut State, req: SearchRequest) -> Result<CallId> {
        if st.shutdown {
            return Err(WsqError::PumpShutdown);
        }
        let obs = &self.shared.config.obs;
        self.shared.stats.registered.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = obs.metrics() {
            m.calls_registered.inc();
        }
        if self.shared.config.coalesce {
            if let Some(&cid) = st.index.get(&req) {
                // The index and meta maps are kept in step under the state
                // lock; if the entry is somehow gone, fall through and
                // register a fresh call rather than panic.
                if let Some(meta) = st.meta.get_mut(&cid) {
                    self.shared.stats.coalesced.fetch_add(1, Ordering::Relaxed);
                    meta.refs += 1;
                    if let Some(m) = obs.metrics() {
                        m.calls_coalesced.inc();
                    }
                    obs.event(cid, EventKind::Coalesced);
                    return Ok(cid);
                }
            }
        }
        let cid = CallId(st.next_call);
        st.next_call += 1;
        obs.event_with(cid, EventKind::Registered, || req.to_string().into());

        // Fail fast on unknown destinations: complete with an error. The
        // call id is brand new, so no waiter can be interested yet.
        if !self.shared.services.read().contains_key(&req.engine) {
            st.meta.insert(
                cid,
                CallMeta {
                    req: req.clone(),
                    refs: 1,
                    state: CallState::Done,
                    registered_at: Instant::now(),
                    launched_at: None,
                },
            );
            st.results.insert(
                cid,
                Err(WsqError::Search(format!("unknown engine '{}'", req.engine))),
            );
            if let Some(m) = obs.metrics() {
                m.calls_failed.inc();
            }
            obs.event(cid, EventKind::Failed);
            return Ok(cid);
        }

        st.index.insert(req.clone(), cid);
        st.meta.insert(
            cid,
            CallMeta {
                req,
                refs: 1,
                state: CallState::Queued,
                registered_at: Instant::now(),
                launched_at: None,
            },
        );
        st.queue.push_back(cid);
        let queued = st.queue.len() as u64;
        self.shared
            .stats
            .peak_queued
            .fetch_max(queued, Ordering::Relaxed);
        if let Some(m) = obs.metrics() {
            m.queue_depth.add(1);
        }
        obs.event(cid, EventKind::Queued);
        Ok(cid)
    }

    /// Non-blocking: the result of `call` if it has completed.
    pub fn peek(&self, call: CallId) -> Option<Result<SearchResult>> {
        self.shared.state.lock().results.get(&call).cloned()
    }

    /// Non-blocking bulk drain: the results of every call in `calls` that
    /// has completed, gathered under a single lock acquisition. Results
    /// stay in the store until released, exactly like [`ReqPump::peek`].
    ///
    /// This is the batched path `ReqSync` uses to absorb a burst of
    /// completions: one lock round instead of one `peek` per call.
    pub fn take_completed(&self, calls: &[CallId]) -> Vec<(CallId, Result<SearchResult>)> {
        let st = self.shared.state.lock();
        calls
            .iter()
            .filter_map(|c| st.results.get(c).map(|r| (*c, r.clone())))
            .collect()
    }

    /// Block until any of `calls` completes; returns the first one found.
    ///
    /// This is the signal `ReqSync` blocks on in its `get_next` when no
    /// completed tuple is available. The sleeping thread is woken only by
    /// a completion of one of `calls` (or shutdown), and the wakeup
    /// carries the completed id — no rescan of the call set on wake.
    ///
    /// # Backpressure interplay
    ///
    /// A capped `ReqSync` (DESIGN.md §11) alternates `take_completed`
    /// drains with `wait_any` while stalled. That drain-then-sleep shape
    /// is race-free because interest is registered *under the same state
    /// lock* that re-checks `results`: a completion landing between the
    /// drain and this call is found by the fast path at the top, and one
    /// landing after registration fires the waiter. There is no window
    /// in which a completion can slip past both — the schedcheck model
    /// `stall_resume` explores every interleaving of this handshake.
    pub fn wait_any(&self, calls: &[CallId]) -> Result<CallId> {
        if calls.is_empty() {
            return Err(WsqError::Exec("wait_any on empty call set".to_string()));
        }
        let waiter = {
            let mut st = self.shared.state.lock();
            if let Some(&done) = calls.iter().find(|c| st.results.contains_key(c)) {
                return Ok(done);
            }
            if st.shutdown {
                return Err(WsqError::PumpShutdown);
            }
            // Guard against waiting on ids the pump will never complete.
            if let Some(&unknown) = calls.iter().find(|c| !st.meta.contains_key(c)) {
                return Err(WsqError::Exec(format!(
                    "wait_any on unknown call {unknown}"
                )));
            }
            let waiter = Arc::new(Waiter::default());
            for &c in calls {
                st.interest.entry(c).or_default().push(waiter.clone());
            }
            waiter
        };
        let wake = waiter.sleep();
        // Deregister from the calls that did not fire.
        {
            let mut st = self.shared.state.lock();
            for &c in calls {
                if let Some(list) = st.interest.get_mut(&c) {
                    list.retain(|w| !Arc::ptr_eq(w, &waiter));
                    if list.is_empty() {
                        st.interest.remove(&c);
                    }
                }
            }
        }
        match wake {
            Wake::Done(cid) => Ok(cid),
            Wake::Shutdown => Err(WsqError::PumpShutdown),
        }
    }

    /// Block until `call` completes and return (a clone of) its result.
    pub fn wait(&self, call: CallId) -> Result<SearchResult> {
        let done = self.wait_any(std::slice::from_ref(&call))?;
        self.peek(done).unwrap_or_else(|| {
            Err(WsqError::Exec(format!(
                "call {call} completed but its result was released"
            )))
        })
    }

    /// Release one reference to `call`. When the last reference is
    /// released, the stored result is dropped; a still-queued call with no
    /// references is cancelled outright. A call released while *in flight*
    /// is cleaned up when its reply arrives (the delivery event must still
    /// fire to free per-destination capacity), so [`ReqPump::live_calls`]
    /// may transiently count it.
    pub fn release(&self, call: CallId) {
        let mut st = self.shared.state.lock();
        let Some(meta) = st.meta.get_mut(&call) else {
            return;
        };
        meta.refs = meta.refs.saturating_sub(1);
        if meta.refs > 0 {
            return;
        }
        match meta.state {
            CallState::Queued => {
                // Cancel before launch.
                let req = meta.req.clone();
                st.queue.retain(|&c| c != call);
                st.meta.remove(&call);
                st.index.remove(&req);
                let obs = &self.shared.config.obs;
                if let Some(m) = obs.metrics() {
                    m.calls_cancelled.inc();
                    m.queue_depth.add(-1);
                }
                obs.event(call, EventKind::Cancelled);
            }
            CallState::Done => {
                let req = meta.req.clone();
                st.meta.remove(&call);
                st.results.remove(&call);
                st.index.remove(&req);
            }
            CallState::InFlight => {
                // Completion handling will notice refs == 0 and clean up.
            }
        }
    }

    /// Number of calls the pump still knows about (for leak tests).
    pub fn live_calls(&self) -> usize {
        self.shared.state.lock().meta.len()
    }

    /// Snapshot of statistics. Reads atomics only — never blocks on the
    /// pump state lock.
    pub fn stats(&self) -> PumpStats {
        self.shared.stats.snapshot()
    }

    /// The observability handle this pump was configured with
    /// ([`Obs::disabled`] unless one was supplied via [`PumpConfig`]).
    /// Engine operators clone this to emit delivery/patch events into the
    /// same trace and metrics as the pump's own lifecycle events.
    pub fn obs(&self) -> &Obs {
        &self.shared.config.obs
    }

    /// Stop the dispatcher. Outstanding `wait` calls return
    /// [`WsqError::PumpShutdown`]; queued calls are dropped.
    pub fn shutdown(&self) {
        let waiters: Vec<Arc<Waiter>> = {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            st.interest.drain().flat_map(|(_, w)| w).collect()
        };
        for w in waiters {
            w.wake(Wake::Shutdown);
        }
        self.shared.work_cv.notify_all();
        // Take the handles out under the lock, then join with the guard
        // released: a worker blocked on re-acquiring `workers` (or a
        // second `shutdown()` racing this one) must not deadlock the
        // join loop.
        let handles: Vec<_> = {
            let mut workers = self.workers.lock();
            workers.drain(..).collect()
        };
        for w in handles {
            let _ = w.join();
        }
    }
}

impl Drop for ReqPump {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Per-destination cap lookup.
fn dest_cap(config: &PumpConfig, dest: &str) -> usize {
    config
        .per_destination
        .get(dest)
        .copied()
        .unwrap_or(config.default_per_destination)
}

/// Is any queued call launchable under current limits?
fn has_launchable(st: &State, config: &PumpConfig) -> bool {
    if st.active_total >= config.max_concurrent {
        return false;
    }
    st.queue.iter().any(|cid| {
        let dest = &st.meta[cid].req.engine;
        let used = st.active_per_dest.get(dest).copied().unwrap_or(0);
        used < dest_cap(config, dest)
    })
}

/// Find the first queued call that can launch under current limits.
/// Scanning past the head avoids head-of-line blocking when one destination
/// is saturated but another has capacity.
fn pop_launchable(st: &mut State, shared: &Shared) -> Option<CallId> {
    let config = &shared.config;
    if st.active_total >= config.max_concurrent {
        return None;
    }
    let pos = st.queue.iter().position(|cid| {
        let dest = &st.meta[cid].req.engine;
        let used = st.active_per_dest.get(dest).copied().unwrap_or(0);
        used < dest_cap(config, dest)
    })?;
    let cid = st.queue.remove(pos)?;
    let meta = st.meta.get_mut(&cid)?;
    meta.state = CallState::InFlight;
    let now = Instant::now();
    meta.launched_at = Some(now);
    let queue_delay = now.saturating_duration_since(meta.registered_at);
    let dest = meta.req.engine.clone();
    st.active_total += 1;
    *st.active_per_dest.entry(dest).or_insert(0) += 1;
    shared.stats.launched.fetch_add(1, Ordering::Relaxed);
    shared
        .stats
        .peak_in_flight
        .fetch_max(st.active_total as u64, Ordering::Relaxed);
    let obs = &shared.config.obs;
    if let Some(m) = obs.metrics() {
        m.calls_launched.inc();
        m.queue_depth.add(-1);
        m.in_flight.add(1);
        m.queue_delay.observe(queue_delay);
    }
    obs.event(cid, EventKind::Launched);
    Some(cid)
}

/// Mark a call complete, store its result, free its capacity, and wake
/// exactly the waiters interested in it.
fn complete(shared: &Shared, cid: CallId, result: Result<SearchResult>) {
    let obs = &shared.config.obs;
    let waiters = {
        let mut st = shared.state.lock();
        st.active_total = st.active_total.saturating_sub(1);
        let mut launched_at = None;
        let orphaned = match st.meta.get_mut(&cid) {
            Some(meta) => {
                meta.state = CallState::Done;
                launched_at = meta.launched_at;
                let dest = meta.req.engine.clone();
                let refs = meta.refs;
                if let Some(n) = st.active_per_dest.get_mut(&dest) {
                    *n = n.saturating_sub(1);
                }
                refs == 0
            }
            None => true,
        };
        shared.stats.completed.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = obs.metrics() {
            m.in_flight.add(-1);
            if let Some(t) = launched_at {
                m.call_latency.observe(t.elapsed());
            }
            match &result {
                Ok(_) => m.calls_completed.inc(),
                Err(_) => m.calls_failed.inc(),
            }
        }
        match &result {
            Ok(_) => obs.event(cid, EventKind::Completed),
            Err(e) => obs.event_with(cid, EventKind::Failed, || e.to_string().into()),
        }
        if orphaned {
            // Every registrant released before completion: drop everything.
            if let Some(meta) = st.meta.remove(&cid) {
                st.index.remove(&meta.req);
            }
        } else {
            st.results.insert(cid, result);
        }
        st.interest.remove(&cid).unwrap_or_default()
    };
    for w in waiters {
        w.wake(Wake::Done(cid));
    }
    shared.work_cv.notify_all(); // capacity freed: dispatcher may launch more
}

/// Deadline-heap entry for the event loop.
struct Pending {
    deadline: Instant,
    cid: CallId,
    result: Result<SearchResult>,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.cid == other.cid
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.deadline
            .cmp(&other.deadline)
            .then(self.cid.cmp(&other.cid))
    }
}

/// Group one launch phase's calls into per-destination submission
/// windows of at most `window` requests, preserving launch order within
/// each destination. `window <= 1` degenerates to singleton batches
/// (the per-request dispatch path).
fn window_batches(
    launches: Vec<(CallId, SearchRequest)>,
    window: usize,
) -> Vec<Vec<(CallId, SearchRequest)>> {
    if window <= 1 {
        return launches.into_iter().map(|l| vec![l]).collect();
    }
    let mut order: Vec<String> = Vec::new();
    let mut per_dest: HashMap<String, Vec<(CallId, SearchRequest)>> = HashMap::new();
    for (cid, req) in launches {
        let dest = req.engine.clone();
        let entry = per_dest.entry(dest.clone()).or_default();
        if entry.is_empty() {
            order.push(dest);
        }
        entry.push((cid, req));
    }
    let mut batches = Vec::new();
    for dest in order {
        let mut calls = per_dest.remove(&dest).unwrap_or_default();
        while calls.len() > window {
            let rest = calls.split_off(window);
            batches.push(calls);
            calls = rest;
        }
        if !calls.is_empty() {
            batches.push(calls);
        }
    }
    batches
}

/// The event-driven dispatcher: launch within limits, hold replies in a
/// deadline heap, deliver when their simulated latency elapses.
fn event_loop(shared: Arc<Shared>) {
    let mut heap: BinaryHeap<Reverse<Pending>> = BinaryHeap::new();
    loop {
        // Launch phase: drain launchable calls, executing outside the lock.
        let mut launches: Vec<(CallId, SearchRequest)> = Vec::new();
        {
            let mut st = shared.state.lock();
            if st.shutdown {
                return;
            }
            while let Some(cid) = pop_launchable(&mut st, &shared) {
                let req = st.meta[&cid].req.clone();
                launches.push((cid, req));
            }
        }
        let now = Instant::now();
        for batch in window_batches(launches, shared.config.submission_window) {
            if let [(cid, req)] = batch.as_slice() {
                let (cid, req) = (*cid, req.clone());
                let service = shared.services.read().get(&req.engine).cloned();
                let reply = match service {
                    // `call_scope` lets decorators (retry/flaky/cache) deep
                    // in the execute stack attribute their trace events to
                    // `cid`.
                    Some(svc) => wsq_obs::call_scope(cid, || svc.execute(&req)),
                    None => ServiceReply {
                        result: Err(WsqError::Search(format!("unknown engine '{}'", req.engine))),
                        latency: Duration::ZERO,
                    },
                };
                heap.push(Reverse(Pending {
                    deadline: now + reply.latency,
                    cid,
                    result: reply.result,
                }));
                continue;
            }
            // Windowed dispatch: one `execute_batch` handoff for the whole
            // destination window, still outside the state lock. Each reply
            // keeps its own simulated latency, so delivery times are
            // identical to per-request dispatch. Per-call trace attribution
            // (`call_scope`) is unavailable inside a batch — decorator
            // events like `Retried` are only recorded on the per-request
            // path.
            let engine = batch[0].1.engine.clone();
            let service = shared.services.read().get(&engine).cloned();
            let reqs: Vec<SearchRequest> = batch.iter().map(|(_, r)| r.clone()).collect();
            let mut replies = match service {
                Some(svc) => svc.execute_batch(&reqs),
                None => Vec::new(),
            };
            // Defensive: a misbehaving service must not strand calls.
            while replies.len() < batch.len() {
                replies.push(ServiceReply {
                    result: Err(WsqError::Search(format!(
                        "engine '{engine}' returned too few batch replies"
                    ))),
                    latency: Duration::ZERO,
                });
            }
            replies.truncate(batch.len());
            shared.stats.batches.fetch_add(1, Ordering::Relaxed);
            let obs = &shared.config.obs;
            if let Some(m) = obs.metrics() {
                // Convention: batch sizes are recorded as "milliseconds"
                // (a window of n requests observes n ms) so the fixed
                // latency bucket ladder doubles as a size ladder.
                m.batch_size
                    .observe(Duration::from_millis(batch.len() as u64));
            }
            for ((cid, _), reply) in batch.into_iter().zip(replies) {
                obs.event(cid, EventKind::BatchLaunched);
                heap.push(Reverse(Pending {
                    deadline: now + reply.latency,
                    cid,
                    result: reply.result,
                }));
            }
        }

        // Delivery phase: complete everything whose deadline has passed.
        let now = Instant::now();
        while heap.peek().is_some_and(|p| p.0.deadline <= now) {
            if let Some(Reverse(p)) = heap.pop() {
                complete(&shared, p.cid, p.result);
            }
        }

        // Wait phase: sleep until the next deadline or new work arrives.
        let mut st = shared.state.lock();
        if st.shutdown {
            return;
        }
        if has_launchable(&st, &shared.config) {
            continue; // go launch it
        }
        match heap.peek() {
            Some(Reverse(p)) => {
                let deadline = p.deadline;
                let _ = shared.work_cv.wait_until(&mut st, deadline);
            }
            None => {
                shared.work_cv.wait(&mut st);
            }
        }
    }
}

/// Thread-pool worker: pop a launchable call, execute (possibly blocking),
/// sleep the declared latency, deliver.
fn worker_loop(shared: Arc<Shared>) {
    loop {
        let (cid, req) = {
            let mut st = shared.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(cid) = pop_launchable(&mut st, &shared) {
                    let req = st.meta[&cid].req.clone();
                    break (cid, req);
                }
                shared.work_cv.wait(&mut st);
            }
        };
        let service = shared.services.read().get(&req.engine).cloned();
        let reply = match service {
            Some(svc) => wsq_obs::call_scope(cid, || svc.execute(&req)),
            None => ServiceReply {
                result: Err(WsqError::Search(format!("unknown engine '{}'", req.engine))),
                latency: Duration::ZERO,
            },
        };
        if !reply.latency.is_zero() {
            std::thread::sleep(reply.latency);
        }
        complete(&shared, cid, reply.result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::RequestKind;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Test service: count = expr length; observes concurrency.
    struct Probe {
        latency: Duration,
        current: AtomicUsize,
        peak: AtomicUsize,
    }

    impl Probe {
        fn new(latency: Duration) -> Arc<Self> {
            Arc::new(Probe {
                latency,
                current: AtomicUsize::new(0),
                peak: AtomicUsize::new(0),
            })
        }
    }

    impl SearchService for Probe {
        fn execute(&self, req: &SearchRequest) -> ServiceReply {
            // In event-loop mode this observes *compute* concurrency (always
            // 1); the pump's own stats observe in-flight concurrency.
            let cur = self.current.fetch_add(1, Ordering::SeqCst) + 1;
            self.peak.fetch_max(cur, Ordering::SeqCst);
            self.current.fetch_sub(1, Ordering::SeqCst);
            ServiceReply {
                result: Ok(SearchResult::Count(req.expr.len() as u64)),
                latency: self.latency,
            }
        }
    }

    fn req(engine: &str, expr: &str) -> SearchRequest {
        SearchRequest {
            engine: engine.into(),
            expr: expr.into(),
            kind: RequestKind::Count,
        }
    }

    #[test]
    fn single_call_roundtrip() {
        let pump = ReqPump::with_service("AV", Probe::new(Duration::from_millis(5)));
        let cid = pump.register(req("AV", "Colorado")).unwrap();
        assert_eq!(pump.wait(cid).unwrap().count(), Some(8));
        pump.release(cid);
        assert_eq!(pump.live_calls(), 0);
    }

    #[test]
    fn concurrent_calls_overlap_in_time() {
        // 20 calls of 30ms each: sequential would be 600ms; the event loop
        // should finish in roughly one latency.
        let pump = ReqPump::with_service("AV", Probe::new(Duration::from_millis(30)));
        let t0 = Instant::now();
        let ids: Vec<CallId> = (0..20)
            .map(|i| pump.register(req("AV", &format!("q{i:02}"))).unwrap())
            .collect();
        for &cid in &ids {
            pump.wait(cid).unwrap();
        }
        let elapsed = t0.elapsed();
        assert!(
            elapsed < Duration::from_millis(300),
            "calls did not overlap: {elapsed:?}"
        );
        assert_eq!(pump.stats().launched, 20);
        assert!(pump.stats().peak_in_flight >= 10);
    }

    #[test]
    fn capped_consumer_drain_loop_never_hangs_or_drops() {
        // The shape a capped ReqSync runs while stalled (DESIGN.md §11):
        // admit one call at a time (cap = 1), then drain-and-wait until
        // it completes before admitting the next. If wait_any could miss
        // a completion that lands between the take_completed drain and
        // the sleep, this loop would hang; if the drain could double-
        // deliver, the count would overshoot.
        let pump = ReqPump::with_service("AV", Probe::new(Duration::from_millis(2)));
        let mut delivered = 0usize;
        for i in 0..32 {
            let cid = pump.register(req("AV", &format!("q{i:02}"))).unwrap();
            let mut pending = vec![cid];
            while !pending.is_empty() {
                let done = pump.take_completed(&pending);
                if done.is_empty() {
                    pump.wait_any(&pending).unwrap();
                    continue;
                }
                for (c, outcome) in done {
                    outcome.unwrap();
                    pending.retain(|p| *p != c);
                    pump.release(c);
                    delivered += 1;
                }
            }
        }
        assert_eq!(delivered, 32);
        assert_eq!(pump.live_calls(), 0);
    }

    #[test]
    fn global_limit_respected() {
        let config = PumpConfig {
            max_concurrent: 3,
            ..PumpConfig::default()
        };
        let pump = ReqPump::new(config);
        pump.register_service("AV", Probe::new(Duration::from_millis(10)));
        let ids: Vec<CallId> = (0..12)
            .map(|i| pump.register(req("AV", &format!("g{i:02}"))).unwrap())
            .collect();
        for &cid in &ids {
            pump.wait(cid).unwrap();
        }
        assert!(pump.stats().peak_in_flight <= 3);
        assert!(pump.stats().peak_queued >= 9 - 3);
    }

    #[test]
    fn per_destination_limit_and_no_head_of_line_blocking() {
        let mut per = HashMap::new();
        per.insert("AV".to_string(), 1);
        let config = PumpConfig {
            max_concurrent: 64,
            per_destination: per,
            ..PumpConfig::default()
        };
        let pump = ReqPump::new(config);
        pump.register_service("AV", Probe::new(Duration::from_millis(40)));
        pump.register_service("Google", Probe::new(Duration::from_millis(5)));
        // Saturate AV, then register Google calls behind them.
        let av: Vec<CallId> = (0..4)
            .map(|i| pump.register(req("AV", &format!("a{i}"))).unwrap())
            .collect();
        let goog: Vec<CallId> = (0..4)
            .map(|i| pump.register(req("Google", &format!("g{i}"))).unwrap())
            .collect();
        // Google calls must not wait for the serialized AV queue.
        let t0 = Instant::now();
        for &cid in &goog {
            pump.wait(cid).unwrap();
        }
        assert!(
            t0.elapsed() < Duration::from_millis(80),
            "google calls were head-of-line blocked: {:?}",
            t0.elapsed()
        );
        for &cid in &av {
            pump.wait(cid).unwrap();
        }
        // AV serialized: 4 * 40ms means total ≥ 160ms by now.
    }

    #[test]
    fn coalescing_merges_identical_requests() {
        let pump = ReqPump::with_service("AV", Probe::new(Duration::from_millis(5)));
        let a = pump.register(req("AV", "same")).unwrap();
        let b = pump.register(req("AV", "same")).unwrap();
        let c = pump.register(req("AV", "different")).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(pump.wait(a).unwrap().count(), Some(4));
        let stats = pump.stats();
        assert_eq!(stats.registered, 3);
        assert_eq!(stats.coalesced, 1);
        assert_eq!(stats.launched, 2);
        // Result survives the first release (refcounted).
        pump.release(a);
        assert!(pump.peek(b).is_some());
        pump.release(b);
        assert!(pump.peek(b).is_none());
        // Wait before releasing: a call released while in flight is only
        // cleaned up at delivery (see `release` docs).
        pump.wait(c).unwrap();
        pump.release(c);
        assert_eq!(pump.live_calls(), 0);
    }

    #[test]
    fn coalescing_can_be_disabled() {
        let config = PumpConfig {
            coalesce: false,
            ..PumpConfig::default()
        };
        let pump = ReqPump::new(config);
        pump.register_service("AV", Probe::new(Duration::ZERO));
        let a = pump.register(req("AV", "same")).unwrap();
        let b = pump.register(req("AV", "same")).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn wait_any_returns_a_completed_call() {
        let pump = ReqPump::with_service("AV", Probe::new(Duration::from_millis(5)));
        let slow = pump.register(req("AV", "slow-call")).unwrap();
        let fast = pump.register(req("AV", "f")).unwrap();
        let done = pump.wait_any(&[slow, fast]).unwrap();
        assert!(done == slow || done == fast);
        pump.wait(slow).unwrap();
        pump.wait(fast).unwrap();
    }

    #[test]
    fn wait_any_wakeup_carries_the_completed_id() {
        // One destination is serialized and slow, the other fast: the
        // wakeup must deliver the fast call's id even though the slow call
        // is listed first.
        let mut per = HashMap::new();
        per.insert("AV".to_string(), 1);
        let config = PumpConfig {
            per_destination: per,
            ..PumpConfig::default()
        };
        let pump = ReqPump::new(config);
        pump.register_service("AV", Probe::new(Duration::from_millis(120)));
        pump.register_service("Google", Probe::new(Duration::from_millis(5)));
        let slow = pump.register(req("AV", "slow")).unwrap();
        let fast = pump.register(req("Google", "fast")).unwrap();
        let done = pump.wait_any(&[slow, fast]).unwrap();
        assert_eq!(done, fast);
        pump.wait(slow).unwrap();
    }

    #[test]
    fn wait_any_on_unknown_call_errors() {
        let pump = ReqPump::with_service("AV", Probe::new(Duration::ZERO));
        let err = pump.wait_any(&[CallId(999)]).unwrap_err();
        assert!(matches!(err, WsqError::Exec(_)));
        assert!(pump.wait_any(&[]).is_err());
    }

    #[test]
    fn take_completed_drains_in_one_pass() {
        let pump = ReqPump::with_service("AV", Probe::new(Duration::from_millis(5)));
        let ids: Vec<CallId> = (0..6)
            .map(|i| pump.register(req("AV", &format!("tc{i}"))).unwrap())
            .collect();
        for &cid in &ids {
            pump.wait(cid).unwrap();
        }
        let done = pump.take_completed(&ids);
        assert_eq!(done.len(), ids.len());
        for (cid, result) in &done {
            assert!(ids.contains(cid));
            assert!(result.is_ok());
        }
        // Results are not consumed: peek still sees them until release.
        assert!(pump.peek(ids[0]).is_some());
        for &cid in &ids {
            pump.release(cid);
        }
        assert!(pump.take_completed(&ids).is_empty());
        assert_eq!(pump.live_calls(), 0);
    }

    #[test]
    fn unknown_engine_fails_fast() {
        let pump = ReqPump::new(PumpConfig::default());
        let cid = pump.register(req("Nope", "x")).unwrap();
        let err = pump.wait(cid).unwrap_err();
        assert!(matches!(err, WsqError::Search(_)));
        assert!(err.to_string().contains("Nope"));
    }

    #[test]
    fn release_cancels_queued_calls() {
        // Cap concurrency at 1 so later calls stay queued.
        let config = PumpConfig {
            max_concurrent: 1,
            ..PumpConfig::default()
        };
        let pump = ReqPump::new(config);
        pump.register_service("AV", Probe::new(Duration::from_millis(50)));
        let first = pump.register(req("AV", "first")).unwrap();
        let second = pump.register(req("AV", "second")).unwrap();
        pump.release(second); // cancel while queued
        pump.wait(first).unwrap();
        // Give the loop a moment; the cancelled call must never launch.
        std::thread::sleep(Duration::from_millis(80));
        assert_eq!(pump.stats().launched, 1);
        pump.release(first);
        assert_eq!(pump.live_calls(), 0);
    }

    #[test]
    fn shutdown_wakes_waiters() {
        let pump = ReqPump::with_service("AV", Probe::new(Duration::from_secs(10)));
        let cid = pump.register(req("AV", "very slow")).unwrap();
        let p2 = pump.clone();
        let waiter = std::thread::spawn(move || p2.wait(cid));
        std::thread::sleep(Duration::from_millis(20));
        pump.shutdown();
        let res = waiter.join().unwrap();
        assert!(matches!(res, Err(WsqError::PumpShutdown)));
        // Registration after shutdown fails.
        assert!(matches!(
            pump.register(req("AV", "late")),
            Err(WsqError::PumpShutdown)
        ));
    }

    #[test]
    fn thread_pool_mode_works_and_overlaps() {
        let config = PumpConfig {
            dispatch: DispatchMode::ThreadPool(8),
            ..PumpConfig::default()
        };
        let pump = ReqPump::new(config);
        pump.register_service("AV", Probe::new(Duration::from_millis(30)));
        let t0 = Instant::now();
        let ids: Vec<CallId> = (0..8)
            .map(|i| pump.register(req("AV", &format!("t{i}"))).unwrap())
            .collect();
        for &cid in &ids {
            assert!(pump.wait(cid).unwrap().count().is_some());
        }
        assert!(
            t0.elapsed() < Duration::from_millis(200),
            "thread pool did not overlap: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn thread_pool_respects_global_limit() {
        let config = PumpConfig {
            dispatch: DispatchMode::ThreadPool(8),
            max_concurrent: 2,
            ..PumpConfig::default()
        };
        let pump = ReqPump::new(config);
        pump.register_service("AV", Probe::new(Duration::from_millis(10)));
        let ids: Vec<CallId> = (0..10)
            .map(|i| pump.register(req("AV", &format!("t{i}"))).unwrap())
            .collect();
        for &cid in &ids {
            pump.wait(cid).unwrap();
        }
        assert!(pump.stats().peak_in_flight <= 2);
    }

    #[test]
    fn zero_latency_calls_complete() {
        let pump = ReqPump::with_service("AV", Probe::new(Duration::ZERO));
        let ids: Vec<CallId> = (0..100)
            .map(|i| pump.register(req("AV", &format!("z{i:03}"))).unwrap())
            .collect();
        for &cid in &ids {
            pump.wait(cid).unwrap();
            pump.release(cid);
        }
        assert_eq!(pump.live_calls(), 0);
        assert_eq!(pump.stats().completed, 100);
    }

    #[test]
    fn register_batch_matches_per_request_registration() {
        let pump = ReqPump::with_service("AV", Probe::new(Duration::from_millis(2)));
        let ids = pump
            .register_batch(vec![req("AV", "aa"), req("AV", "bbb"), req("AV", "aa")])
            .unwrap();
        assert_eq!(ids.len(), 3);
        assert_eq!(ids[0], ids[2], "identical requests coalesce in a batch");
        assert_ne!(ids[0], ids[1]);
        assert_eq!(pump.wait(ids[0]).unwrap().count(), Some(2));
        assert_eq!(pump.wait(ids[1]).unwrap().count(), Some(3));
        let stats = pump.stats();
        assert_eq!(stats.registered, 3);
        assert_eq!(stats.coalesced, 1);
        assert_eq!(stats.launched, 2);
        for &c in &ids {
            pump.release(c);
        }
        assert_eq!(pump.live_calls(), 0);
    }

    #[test]
    fn register_batch_after_shutdown_fails() {
        let pump = ReqPump::with_service("AV", Probe::new(Duration::ZERO));
        pump.shutdown();
        assert!(matches!(
            pump.register_batch(vec![req("AV", "x")]),
            Err(WsqError::PumpShutdown)
        ));
    }

    #[test]
    fn submission_window_batches_same_destination_dispatches() {
        let config = PumpConfig {
            submission_window: 4,
            ..PumpConfig::default()
        };
        let pump = ReqPump::new(config);
        pump.register_service("AV", Probe::new(Duration::from_millis(5)));
        let ids = pump
            .register_batch((0..8).map(|i| req("AV", &format!("b{i:02}"))).collect())
            .unwrap();
        for &cid in &ids {
            assert!(pump.wait(cid).unwrap().count().is_some());
        }
        let stats = pump.stats();
        assert_eq!(stats.launched, 8);
        assert!(
            stats.batches >= 1,
            "8 same-destination calls under window=4 never batched"
        );
        for &cid in &ids {
            pump.release(cid);
        }
        assert_eq!(pump.live_calls(), 0);
    }

    #[test]
    fn window_batches_groups_by_destination_and_chunks() {
        let launches: Vec<(CallId, SearchRequest)> = vec![
            (CallId(0), req("AV", "a")),
            (CallId(1), req("Google", "b")),
            (CallId(2), req("AV", "c")),
            (CallId(3), req("AV", "d")),
            (CallId(4), req("AV", "e")),
        ];
        let batches = window_batches(launches.clone(), 3);
        assert_eq!(batches.len(), 3);
        assert_eq!(
            batches[0].iter().map(|(c, _)| c.0).collect::<Vec<_>>(),
            vec![0, 2, 3],
            "AV window fills in launch order"
        );
        assert_eq!(batches[1].len(), 1, "AV overflow starts a new window");
        assert_eq!(batches[1][0].0, CallId(4));
        assert_eq!(batches[2][0].0, CallId(1));
        // window=1 degenerates to singletons in order.
        let singles = window_batches(launches, 1);
        assert_eq!(singles.len(), 5);
        assert!(singles.iter().all(|b| b.len() == 1));
    }

    #[test]
    fn many_waiters_each_get_their_own_completion() {
        // Each thread waits on its own call; targeted delivery must wake
        // every one of them exactly with its id.
        let pump = ReqPump::with_service("AV", Probe::new(Duration::from_millis(10)));
        let handles: Vec<_> = (0..16)
            .map(|i| {
                let pump = pump.clone();
                std::thread::spawn(move || {
                    let cid = pump.register(req("AV", &format!("w{i:02}"))).unwrap();
                    let done = pump.wait_any(&[cid]).unwrap();
                    assert_eq!(done, cid);
                    pump.release(cid);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pump.live_calls(), 0);
        assert_eq!(pump.stats().completed, 16);
    }
}
