//! Model-based property tests for ReqPump: under random interleavings of
//! register / wait / release across both dispatchers and random limits,
//! the pump must deliver exactly the right results, respect its caps, and
//! never leak calls.

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use wsq_pump::{
    DispatchMode, PumpConfig, ReqPump, RequestKind, SearchRequest, SearchResult, SearchService,
    ServiceReply,
};

/// Deterministic test service: count = f(expr), latency = tiny hash jitter.
struct HashService;

fn expected_count(expr: &str) -> u64 {
    expr.bytes().map(u64::from).sum::<u64>() % 1000
}

impl SearchService for HashService {
    fn execute(&self, req: &SearchRequest) -> ServiceReply {
        let ms = expr_latency_ms(&req.expr);
        ServiceReply {
            result: Ok(SearchResult::Count(expected_count(&req.expr))),
            latency: Duration::from_millis(ms),
        }
    }
}

fn expr_latency_ms(expr: &str) -> u64 {
    expr.bytes().map(u64::from).sum::<u64>() % 4
}

#[derive(Debug, Clone)]
enum Op {
    /// Register request with expression index `i` from the pool.
    Register(usize),
    /// Wait on the n-th still-live registration and verify its result.
    Wait(usize),
    /// Release the n-th still-live registration.
    Release(usize),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..12usize).prop_map(Op::Register),
        2 => (0..16usize).prop_map(Op::Wait),
        2 => (0..16usize).prop_map(Op::Release),
    ]
}

fn arb_config() -> impl Strategy<Value = PumpConfig> {
    (
        prop_oneof![Just(1usize), Just(2), Just(4), Just(64)],
        any::<bool>(),
        prop_oneof![
            Just(DispatchMode::EventLoop),
            Just(DispatchMode::ThreadPool(4))
        ],
    )
        .prop_map(|(max_concurrent, coalesce, dispatch)| PumpConfig {
            max_concurrent,
            coalesce,
            dispatch,
            ..PumpConfig::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pump_matches_model(
        ops in prop::collection::vec(arb_op(), 1..40),
        config in arb_config(),
    ) {
        let pump = ReqPump::new(config);
        pump.register_service("AV", Arc::new(HashService));

        // Live registrations: (call id, expr). One entry per register()
        // call — coalesced registrations appear multiple times and must be
        // released once each.
        let mut live: Vec<(wsq_pump::CallId, String)> = Vec::new();
        let mut registered_per_expr: HashMap<String, usize> = HashMap::new();

        for op in ops {
            match op {
                Op::Register(i) => {
                    let expr = format!("query number {i}");
                    let call = pump.register(SearchRequest {
                        engine: "AV".into(),
                        expr: expr.clone(),
                        kind: RequestKind::Count,
                    }).unwrap();
                    *registered_per_expr.entry(expr.clone()).or_default() += 1;
                    live.push((call, expr));
                }
                Op::Wait(n) => {
                    if live.is_empty() { continue; }
                    let (call, expr) = live[n % live.len()].clone();
                    let result = pump.wait(call).unwrap();
                    prop_assert_eq!(result.count(), Some(expected_count(&expr)));
                }
                Op::Release(n) => {
                    if live.is_empty() { continue; }
                    let idx = n % live.len();
                    let (call, _) = live.remove(idx);
                    pump.release(call);
                }
            }
        }
        // Drain: every remaining registration must still be waitable and
        // produce the correct result.
        for (call, expr) in live.drain(..) {
            let result = pump.wait(call).unwrap();
            prop_assert_eq!(result.count(), Some(expected_count(&expr)));
            pump.release(call);
        }
        // A call released while in flight is cleaned up when its reply
        // arrives (the pump needs the delivery event to free per-
        // destination capacity), so allow brief quiescence.
        let deadline = std::time::Instant::now() + Duration::from_millis(500);
        while pump.live_calls() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        prop_assert_eq!(pump.live_calls(), 0, "pump leaked calls");

        let stats = pump.stats();
        prop_assert!(stats.peak_in_flight <= 64);
        prop_assert!(stats.launched <= stats.registered);
    }
}

#[test]
fn stress_many_concurrent_waiters() {
    // 8 threads × 50 calls against a capacity-4 pump: everything completes
    // correctly under contention.
    let pump = ReqPump::new(PumpConfig {
        max_concurrent: 4,
        ..PumpConfig::default()
    });
    pump.register_service("AV", Arc::new(HashService));
    let mut handles = Vec::new();
    for t in 0..8 {
        let pump = pump.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..50 {
                let expr = format!("thread {t} call {i}");
                let call = pump
                    .register(SearchRequest {
                        engine: "AV".into(),
                        expr: expr.clone(),
                        kind: RequestKind::Count,
                    })
                    .unwrap();
                let r = pump.wait(call).unwrap();
                assert_eq!(r.count(), Some(expected_count(&expr)));
                pump.release(call);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(pump.live_calls(), 0);
    assert!(pump.stats().peak_in_flight <= 4);
    assert_eq!(pump.stats().completed, pump.stats().launched);
}
