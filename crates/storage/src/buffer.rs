//! The shared buffer pool: page-level caching with LRU replacement.
//!
//! All heap files of a database share one pool (as Redbase's PF component
//! shares its buffer across open files). Pages are accessed through
//! closure-based `with_page` / `with_page_mut` methods; the pool lock is
//! held for the closure's duration, which keeps the implementation simple
//! and makes eviction trivially safe (a page being accessed can never be
//! chosen as a victim because access and eviction are serialized).

use crate::disk::Storage;
use crate::page::{zeroed_page, FileId, PageBuf, PageId};
use parking_lot::Mutex;
use std::collections::HashMap;

use wsq_common::{Result, WsqError};

/// Cumulative buffer pool statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Page requests served from the pool.
    pub hits: u64,
    /// Page requests that had to read from storage.
    pub misses: u64,
    /// Dirty pages written back during eviction.
    pub dirty_evictions: u64,
    /// Total evictions.
    pub evictions: u64,
}

struct Frame {
    file: FileId,
    page: PageId,
    data: PageBuf,
    dirty: bool,
    /// Logical clock of the most recent access, for LRU victim selection.
    last_used: u64,
}

struct PoolInner {
    capacity: usize,
    files: HashMap<FileId, Box<dyn Storage>>,
    next_file: u32,
    frames: Vec<Frame>,
    /// Maps (file, page) to an index in `frames`.
    table: HashMap<(FileId, PageId), usize>,
    tick: u64,
    stats: PoolStats,
}

/// A page-level buffer pool shared by every file of a database.
pub struct BufferPool {
    inner: Mutex<PoolInner>,
}

impl BufferPool {
    /// Create a pool that caches up to `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        BufferPool {
            inner: Mutex::new(PoolInner {
                capacity,
                files: HashMap::new(),
                next_file: 0,
                frames: Vec::new(),
                table: HashMap::new(),
                tick: 0,
                stats: PoolStats::default(),
            }),
        }
    }

    /// Register a file with the pool, receiving the id used to address its
    /// pages.
    pub fn register_file(&self, storage: Box<dyn Storage>) -> FileId {
        let mut inner = self.inner.lock();
        let id = FileId(inner.next_file);
        inner.next_file += 1;
        inner.files.insert(id, storage);
        id
    }

    /// Flush and forget every cached page of `file`, then drop the file.
    pub fn unregister_file(&self, file: FileId) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.flush_file(file)?;
        // Drop cached frames belonging to the file.
        let victims: Vec<usize> = inner
            .table
            .iter()
            .filter(|((f, _), _)| *f == file)
            .map(|(_, &idx)| idx)
            .collect();
        for idx in victims {
            let key = (inner.frames[idx].file, inner.frames[idx].page);
            inner.table.remove(&key);
            // Mark the frame reusable by pointing it at an impossible key.
            inner.frames[idx].dirty = false;
            inner.frames[idx].last_used = 0;
            inner.frames[idx].file = FileId(u32::MAX);
        }
        inner.frames.retain(|f| f.file != FileId(u32::MAX));
        inner.rebuild_table();
        inner
            .files
            .remove(&file)
            .map(|_| ())
            .ok_or_else(|| WsqError::Storage(format!("unknown file {file}")))
    }

    /// Allocate a fresh page in `file`.
    pub fn allocate_page(&self, file: FileId) -> Result<PageId> {
        let mut inner = self.inner.lock();
        let storage = inner
            .files
            .get_mut(&file)
            .ok_or_else(|| WsqError::Storage(format!("unknown file {file}")))?;
        storage.allocate_page()
    }

    /// Number of pages in `file`.
    pub fn num_pages(&self, file: FileId) -> Result<u32> {
        let inner = self.inner.lock();
        let storage = inner
            .files
            .get(&file)
            .ok_or_else(|| WsqError::Storage(format!("unknown file {file}")))?;
        Ok(storage.num_pages())
    }

    /// Run `f` with read access to a page's bytes.
    pub fn with_page<R>(
        &self,
        file: FileId,
        page: PageId,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R> {
        let mut inner = self.inner.lock();
        let idx = inner.fetch(file, page)?;
        Ok(f(&inner.frames[idx].data[..]))
    }

    /// Run `f` with write access to a page's bytes; the page is marked
    /// dirty and written back on eviction or flush.
    pub fn with_page_mut<R>(
        &self,
        file: FileId,
        page: PageId,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> Result<R> {
        let mut inner = self.inner.lock();
        let idx = inner.fetch(file, page)?;
        inner.frames[idx].dirty = true;
        Ok(f(&mut inner.frames[idx].data[..]))
    }

    /// Write back every dirty page of every file and sync the files.
    pub fn flush_all(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        let files: Vec<FileId> = inner.files.keys().copied().collect();
        for file in files {
            inner.flush_file(file)?;
        }
        for storage in inner.files.values_mut() {
            storage.sync()?;
        }
        Ok(())
    }

    /// Snapshot of the pool statistics.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats
    }

    /// The pool's frame capacity.
    pub fn capacity(&self) -> usize {
        self.inner.lock().capacity
    }
}

impl PoolInner {
    fn rebuild_table(&mut self) {
        self.table = self
            .frames
            .iter()
            .enumerate()
            .map(|(i, fr)| ((fr.file, fr.page), i))
            .collect();
    }

    /// Bring (file, page) into a frame and return the frame index.
    fn fetch(&mut self, file: FileId, page: PageId) -> Result<usize> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(&idx) = self.table.get(&(file, page)) {
            self.stats.hits += 1;
            self.frames[idx].last_used = tick;
            return Ok(idx);
        }
        self.stats.misses += 1;

        // Read the page before touching frame bookkeeping, so failures
        // leave the pool unchanged.
        let mut buf = zeroed_page();
        {
            let storage = self
                .files
                .get_mut(&file)
                .ok_or_else(|| WsqError::Storage(format!("unknown file {file}")))?;
            storage.read_page(page, &mut buf)?;
        }

        let idx = if self.frames.len() < self.capacity {
            self.frames.push(Frame {
                file,
                page,
                data: buf,
                dirty: false,
                last_used: tick,
            });
            self.frames.len() - 1
        } else {
            let victim = self.pick_victim();
            self.evict(victim)?;
            let fr = &mut self.frames[victim];
            fr.file = file;
            fr.page = page;
            fr.data = buf;
            fr.dirty = false;
            fr.last_used = tick;
            victim
        };
        self.table.insert((file, page), idx);
        Ok(idx)
    }

    /// LRU victim: the frame with the smallest `last_used`.
    ///
    /// O(frames) scan; pools here are small and access is already
    /// lock-serialized, so an intrusive LRU list would buy nothing
    /// measurable (premature-optimization guidance from the perf book).
    fn pick_victim(&self) -> usize {
        self.frames
            .iter()
            .enumerate()
            .min_by_key(|(_, f)| f.last_used)
            .map(|(i, _)| i)
            .expect("pool has at least one frame")
    }

    fn evict(&mut self, idx: usize) -> Result<()> {
        self.stats.evictions += 1;
        let (file, page, dirty) = {
            let fr = &self.frames[idx];
            (fr.file, fr.page, fr.dirty)
        };
        if dirty {
            self.stats.dirty_evictions += 1;
            let data = &self.frames[idx].data;
            let storage = self
                .files
                .get_mut(&file)
                .ok_or_else(|| WsqError::Storage(format!("unknown file {file}")))?;
            storage.write_page(page, data)?;
        }
        self.table.remove(&(file, page));
        Ok(())
    }

    fn flush_file(&mut self, file: FileId) -> Result<()> {
        for idx in 0..self.frames.len() {
            if self.frames[idx].file == file && self.frames[idx].dirty {
                let page = self.frames[idx].page;
                let storage = self
                    .files
                    .get_mut(&file)
                    .ok_or_else(|| WsqError::Storage(format!("unknown file {file}")))?;
                storage.write_page(page, &self.frames[idx].data)?;
                self.frames[idx].dirty = false;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemStorage;

    fn pool_with_file(capacity: usize, pages: u32) -> (BufferPool, FileId) {
        let pool = BufferPool::new(capacity);
        let mut mem = MemStorage::new();
        for _ in 0..pages {
            mem.allocate_page().unwrap();
        }
        let file = pool.register_file(Box::new(mem));
        (pool, file)
    }

    #[test]
    fn read_your_writes_through_the_pool() {
        let (pool, f) = pool_with_file(4, 2);
        pool.with_page_mut(f, PageId(1), |d| d[10] = 42).unwrap();
        let v = pool.with_page(f, PageId(1), |d| d[10]).unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        // Capacity 1 forces an eviction on every distinct page access.
        let (pool, f) = pool_with_file(1, 3);
        pool.with_page_mut(f, PageId(0), |d| d[0] = 7).unwrap();
        pool.with_page_mut(f, PageId(1), |d| d[0] = 8).unwrap(); // evicts p0
        pool.with_page_mut(f, PageId(2), |d| d[0] = 9).unwrap(); // evicts p1
        assert_eq!(pool.with_page(f, PageId(0), |d| d[0]).unwrap(), 7);
        assert_eq!(pool.with_page(f, PageId(1), |d| d[0]).unwrap(), 8);
        assert_eq!(pool.with_page(f, PageId(2), |d| d[0]).unwrap(), 9);
        let stats = pool.stats();
        assert!(stats.evictions >= 4);
        assert!(stats.dirty_evictions >= 3);
    }

    #[test]
    fn lru_prefers_older_pages() {
        let (pool, f) = pool_with_file(2, 3);
        pool.with_page(f, PageId(0), |_| ()).unwrap();
        pool.with_page(f, PageId(1), |_| ()).unwrap();
        pool.with_page(f, PageId(0), |_| ()).unwrap(); // p0 now recent
        pool.with_page(f, PageId(2), |_| ()).unwrap(); // should evict p1
        let s0 = pool.stats();
        pool.with_page(f, PageId(0), |_| ()).unwrap(); // should be a hit
        let s1 = pool.stats();
        assert_eq!(s1.hits, s0.hits + 1);
        assert_eq!(s1.misses, s0.misses);
    }

    #[test]
    fn multiple_files_do_not_collide() {
        let pool = BufferPool::new(4);
        let mut a = MemStorage::new();
        a.allocate_page().unwrap();
        let mut b = MemStorage::new();
        b.allocate_page().unwrap();
        let fa = pool.register_file(Box::new(a));
        let fb = pool.register_file(Box::new(b));
        pool.with_page_mut(fa, PageId(0), |d| d[0] = 1).unwrap();
        pool.with_page_mut(fb, PageId(0), |d| d[0] = 2).unwrap();
        assert_eq!(pool.with_page(fa, PageId(0), |d| d[0]).unwrap(), 1);
        assert_eq!(pool.with_page(fb, PageId(0), |d| d[0]).unwrap(), 2);
    }

    #[test]
    fn unregister_flushes_and_forgets() {
        let pool = BufferPool::new(4);
        let mut mem = MemStorage::new();
        mem.allocate_page().unwrap();
        let f = pool.register_file(Box::new(mem));
        pool.with_page_mut(f, PageId(0), |d| d[0] = 5).unwrap();
        pool.unregister_file(f).unwrap();
        assert!(pool.with_page(f, PageId(0), |_| ()).is_err());
        assert!(pool.unregister_file(f).is_err());
    }

    #[test]
    fn unknown_file_errors() {
        let pool = BufferPool::new(2);
        assert!(pool.allocate_page(FileId(99)).is_err());
        assert!(pool.num_pages(FileId(99)).is_err());
        assert!(pool.with_page(FileId(99), PageId(0), |_| ()).is_err());
    }

    #[test]
    fn flush_all_persists_to_backing_storage() {
        // Use a shared MemStorage via a wrapper to observe write-back.
        struct Spy {
            inner: MemStorage,
            writes: std::sync::Arc<std::sync::atomic::AtomicU64>,
        }
        impl Storage for Spy {
            fn read_page(&mut self, p: PageId, b: &mut PageBuf) -> Result<()> {
                self.inner.read_page(p, b)
            }
            fn write_page(&mut self, p: PageId, b: &PageBuf) -> Result<()> {
                self.writes
                    .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                self.inner.write_page(p, b)
            }
            fn allocate_page(&mut self) -> Result<PageId> {
                self.inner.allocate_page()
            }
            fn num_pages(&self) -> u32 {
                self.inner.num_pages()
            }
            fn sync(&mut self) -> Result<()> {
                Ok(())
            }
        }
        let writes = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut inner = MemStorage::new();
        inner.allocate_page().unwrap();
        let pool = BufferPool::new(2);
        let f = pool.register_file(Box::new(Spy {
            inner,
            writes: writes.clone(),
        }));
        pool.with_page_mut(f, PageId(0), |d| d[0] = 9).unwrap();
        assert_eq!(writes.load(std::sync::atomic::Ordering::SeqCst), 0);
        pool.flush_all().unwrap();
        assert_eq!(writes.load(std::sync::atomic::Ordering::SeqCst), 1);
        // A second flush has nothing dirty to write.
        pool.flush_all().unwrap();
        assert_eq!(writes.load(std::sync::atomic::Ordering::SeqCst), 1);
    }
}
