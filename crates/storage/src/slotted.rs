//! Slotted-page record layout.
//!
//! Classic textbook layout over a 4 KiB page:
//!
//! ```text
//! +--------+-----------------+...free space...+-----------+-----------+
//! | header | slot directory →                 ← record N  | record 0  |
//! +--------+-----------------+----------------+-----------+-----------+
//! ```
//!
//! * Header (6 bytes): `slot_count: u16`, `record_start: u16` (lowest byte
//!   offset occupied by record data), 2 reserved bytes.
//! * Slot `i` (4 bytes at `6 + 4*i`): `offset: u16`, `len: u16`. A deleted
//!   slot is a *tombstone* (`offset == 0xFFFF`) and may be reused.
//! * Records grow from the end of the page toward the slot directory.
//!
//! Deletion leaves holes; [`insert`] compacts the page when total free
//! space suffices but contiguous space does not. Slot ids are stable across
//! compaction (record ids must survive reorganization).

use wsq_common::{Result, WsqError};

/// Byte offset marking a tombstoned slot.
const TOMBSTONE: u16 = 0xFFFF;
/// Header size in bytes.
const HEADER: usize = 6;
/// Bytes per slot directory entry.
const SLOT: usize = 4;

/// A record's slot index within its page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotId(pub u16);

/// Largest record a page can hold (one slot, empty directory otherwise).
pub fn max_record_len(page_size: usize) -> usize {
    page_size - HEADER - SLOT
}

fn read_u16(page: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([page[at], page[at + 1]])
}

fn write_u16(page: &mut [u8], at: usize, v: u16) {
    page[at..at + 2].copy_from_slice(&v.to_le_bytes());
}

/// Number of slots (live + tombstoned) in the directory.
pub fn slot_count(page: &[u8]) -> u16 {
    read_u16(page, 0)
}

fn record_start(page: &[u8]) -> usize {
    let rs = read_u16(page, 2) as usize;
    // A freshly zeroed page reads 0; treat it as an empty, initialized page.
    if rs == 0 {
        page.len()
    } else {
        rs
    }
}

fn set_slot(page: &mut [u8], slot: u16, offset: u16, len: u16) {
    let at = HEADER + SLOT * slot as usize;
    write_u16(page, at, offset);
    write_u16(page, at + 2, len);
}

fn slot_entry(page: &[u8], slot: u16) -> (u16, u16) {
    let at = HEADER + SLOT * slot as usize;
    (read_u16(page, at), read_u16(page, at + 2))
}

/// Initialize an empty slotted page (idempotent on zeroed pages).
pub fn init(page: &mut [u8]) {
    let len = page.len() as u16;
    write_u16(page, 0, 0);
    write_u16(page, 2, len);
}

/// Contiguous free bytes between the slot directory and the record area.
pub fn contiguous_free(page: &[u8]) -> usize {
    let dir_end = HEADER + SLOT * slot_count(page) as usize;
    record_start(page).saturating_sub(dir_end)
}

/// Total reclaimable free bytes (after compaction), *excluding* the cost of
/// a new slot entry.
pub fn total_free(page: &[u8]) -> usize {
    let n = slot_count(page);
    let live: usize = (0..n)
        .map(|i| {
            let (off, len) = slot_entry(page, i);
            if off == TOMBSTONE {
                0
            } else {
                len as usize
            }
        })
        .sum();
    page.len() - HEADER - SLOT * n as usize - live
}

/// Would a record of `len` bytes fit in this page (possibly after
/// compaction and/or tombstone reuse)?
pub fn fits(page: &[u8], len: usize) -> bool {
    let has_tombstone = (0..slot_count(page)).any(|i| slot_entry(page, i).0 == TOMBSTONE);
    let need = if has_tombstone { len } else { len + SLOT };
    total_free(page) >= need
}

/// Insert a record, compacting if needed. Returns `None` if it cannot fit.
pub fn insert(page: &mut [u8], rec: &[u8]) -> Option<SlotId> {
    if rec.len() > max_record_len(page.len()) || !fits(page, rec.len()) {
        return None;
    }
    // Reuse the first tombstone slot, else append a new slot.
    let n = slot_count(page);
    let slot = (0..n)
        .find(|&i| slot_entry(page, i).0 == TOMBSTONE)
        .unwrap_or(n);
    let need_dir = if slot == n { SLOT } else { 0 };
    let dir_end = HEADER + SLOT * n as usize + need_dir;
    if record_start(page).saturating_sub(dir_end) < rec.len() {
        compact(page);
    }
    debug_assert!(record_start(page) - dir_end >= rec.len());

    let new_start = record_start(page) - rec.len();
    page[new_start..new_start + rec.len()].copy_from_slice(rec);
    write_u16(page, 2, new_start as u16);
    if slot == n {
        write_u16(page, 0, n + 1);
    }
    set_slot(page, slot, new_start as u16, rec.len() as u16);
    Some(SlotId(slot))
}

/// Read a record. `None` for out-of-range or tombstoned slots.
pub fn get(page: &[u8], slot: SlotId) -> Option<&[u8]> {
    if slot.0 >= slot_count(page) {
        return None;
    }
    let (off, len) = slot_entry(page, slot.0);
    if off == TOMBSTONE {
        return None;
    }
    Some(&page[off as usize..off as usize + len as usize])
}

/// Delete a record, leaving a tombstone. Returns `false` if already absent.
pub fn delete(page: &mut [u8], slot: SlotId) -> bool {
    if slot.0 >= slot_count(page) {
        return false;
    }
    let (off, _) = slot_entry(page, slot.0);
    if off == TOMBSTONE {
        return false;
    }
    set_slot(page, slot.0, TOMBSTONE, 0);
    true
}

/// Update a record in place. Fails (returning `false`, page unchanged) if
/// the slot is absent or the new record cannot fit even after compaction.
pub fn update(page: &mut [u8], slot: SlotId, rec: &[u8]) -> Result<bool> {
    if slot.0 >= slot_count(page) {
        return Ok(false);
    }
    let (off, len) = slot_entry(page, slot.0);
    if off == TOMBSTONE {
        return Ok(false);
    }
    if rec.len() <= len as usize {
        // Shrinking or same-size: overwrite in place. The leftover bytes
        // become internal fragmentation reclaimed by the next compaction.
        let off = off as usize;
        page[off..off + rec.len()].copy_from_slice(rec);
        set_slot(page, slot.0, off as u16, rec.len() as u16);
        return Ok(true);
    }
    // Growing: free the old copy, then re-insert into the same slot.
    let extra = rec.len() - len as usize;
    if total_free(page) < extra {
        return Err(WsqError::Storage(
            "record update does not fit in page".to_string(),
        ));
    }
    set_slot(page, slot.0, TOMBSTONE, 0);
    compact(page);
    let new_start = record_start(page) - rec.len();
    page[new_start..new_start + rec.len()].copy_from_slice(rec);
    write_u16(page, 2, new_start as u16);
    set_slot(page, slot.0, new_start as u16, rec.len() as u16);
    Ok(true)
}

/// Move all live records to the end of the page, squeezing out holes.
/// Slot ids are preserved.
pub fn compact(page: &mut [u8]) {
    let n = slot_count(page);
    // Collect live entries ordered by descending offset so we can repack
    // from the page end without overlapping copies.
    let mut live: Vec<(u16, u16, u16)> = (0..n)
        .filter_map(|i| {
            let (off, len) = slot_entry(page, i);
            (off != TOMBSTONE).then_some((i, off, len))
        })
        .collect();
    live.sort_by_key(|entry| std::cmp::Reverse(entry.1));

    let mut dest = page.len();
    for (slot, off, len) in live {
        let len_us = len as usize;
        dest -= len_us;
        page.copy_within(off as usize..off as usize + len_us, dest);
        set_slot(page, slot, dest as u16, len);
    }
    write_u16(page, 2, dest as u16);
}

/// Iterate live `(SlotId, record bytes)` pairs in slot order.
pub fn iter(page: &[u8]) -> impl Iterator<Item = (SlotId, &[u8])> {
    (0..slot_count(page)).filter_map(move |i| {
        let (off, len) = slot_entry(page, i);
        (off != TOMBSTONE).then(|| (SlotId(i), &page[off as usize..off as usize + len as usize]))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PAGE_SIZE;

    fn fresh() -> Vec<u8> {
        let mut p = vec![0u8; PAGE_SIZE];
        init(&mut p);
        p
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut p = fresh();
        let a = insert(&mut p, b"hello").unwrap();
        let b = insert(&mut p, b"world!").unwrap();
        assert_eq!(get(&p, a).unwrap(), b"hello");
        assert_eq!(get(&p, b).unwrap(), b"world!");
        assert_eq!(slot_count(&p), 2);
    }

    #[test]
    fn zeroed_page_is_a_valid_empty_page() {
        let p = vec![0u8; PAGE_SIZE];
        assert_eq!(slot_count(&p), 0);
        assert_eq!(iter(&p).count(), 0);
        let mut p = p;
        assert!(insert(&mut p, b"x").is_some());
    }

    #[test]
    fn delete_leaves_tombstone_and_slot_is_reused() {
        let mut p = fresh();
        let a = insert(&mut p, b"aaa").unwrap();
        let _b = insert(&mut p, b"bbb").unwrap();
        assert!(delete(&mut p, a));
        assert!(get(&p, a).is_none());
        assert!(!delete(&mut p, a)); // double delete
        let c = insert(&mut p, b"ccc").unwrap();
        assert_eq!(c, a, "tombstoned slot should be reused");
        assert_eq!(slot_count(&p), 2);
    }

    #[test]
    fn empty_records_are_allowed() {
        let mut p = fresh();
        let s = insert(&mut p, b"").unwrap();
        assert_eq!(get(&p, s).unwrap(), b"");
    }

    #[test]
    fn fills_page_and_rejects_overflow() {
        let mut p = fresh();
        let rec = vec![7u8; 100];
        let mut n = 0;
        while insert(&mut p, &rec).is_some() {
            n += 1;
        }
        // 4096 - 6 = 4090 usable; each record costs 104.
        assert_eq!(n, 4090 / 104);
        assert!(insert(&mut p, &rec).is_none());
        // But a small record still fits in the tail.
        assert!(insert(&mut p, &[1u8; 10]).is_some());
    }

    #[test]
    fn max_record_fits_exactly() {
        let mut p = fresh();
        let rec = vec![1u8; max_record_len(PAGE_SIZE)];
        assert!(insert(&mut p, &rec).is_some());
        assert!(insert(&mut p, b"").is_none()); // even a 0-byte rec needs a slot
        let too_big = vec![1u8; max_record_len(PAGE_SIZE) + 1];
        let mut p2 = fresh();
        assert!(insert(&mut p2, &too_big).is_none());
    }

    #[test]
    fn compaction_reclaims_holes() {
        let mut p = fresh();
        let ids: Vec<SlotId> = (0..10)
            .map(|_| insert(&mut p, &[9u8; 300]).unwrap())
            .collect();
        // Free every other record: total free is large but fragmented.
        for id in ids.iter().step_by(2) {
            delete(&mut p, *id);
        }
        // 5 * 300 = 1500 freed, contiguous hole is at most ~1090+300.
        let big = vec![3u8; 1400];
        let s = insert(&mut p, &big).expect("should fit after compaction");
        assert_eq!(get(&p, s).unwrap(), &big[..]);
        // Survivors intact.
        for id in ids.iter().skip(1).step_by(2) {
            assert_eq!(get(&p, *id).unwrap(), &[9u8; 300][..]);
        }
    }

    #[test]
    fn update_in_place_and_growing() {
        let mut p = fresh();
        let s = insert(&mut p, b"0123456789").unwrap();
        // Shrink in place.
        assert!(update(&mut p, s, b"abc").unwrap());
        assert_eq!(get(&p, s).unwrap(), b"abc");
        // Grow.
        let big = vec![5u8; 500];
        assert!(update(&mut p, s, &big).unwrap());
        assert_eq!(get(&p, s).unwrap(), &big[..]);
        // Grow beyond capacity fails cleanly.
        let huge = vec![5u8; PAGE_SIZE];
        assert!(update(&mut p, s, &huge).is_err());
        assert_eq!(
            get(&p, s).unwrap(),
            &big[..],
            "failed update left data intact"
        );
    }

    #[test]
    fn update_missing_slot_returns_false() {
        let mut p = fresh();
        assert!(!update(&mut p, SlotId(0), b"x").unwrap());
        let s = insert(&mut p, b"y").unwrap();
        delete(&mut p, s);
        assert!(!update(&mut p, s, b"x").unwrap());
    }

    #[test]
    fn iter_skips_tombstones_in_slot_order() {
        let mut p = fresh();
        let a = insert(&mut p, b"a").unwrap();
        let b = insert(&mut p, b"b").unwrap();
        let c = insert(&mut p, b"c").unwrap();
        delete(&mut p, b);
        let got: Vec<(SlotId, Vec<u8>)> = iter(&p).map(|(s, r)| (s, r.to_vec())).collect();
        assert_eq!(got, vec![(a, b"a".to_vec()), (c, b"c".to_vec())]);
    }

    #[test]
    fn free_space_accounting() {
        let mut p = fresh();
        let before = total_free(&p);
        assert_eq!(before, PAGE_SIZE - HEADER);
        let s = insert(&mut p, &[0u8; 100]).unwrap();
        assert_eq!(total_free(&p), before - 100 - SLOT);
        delete(&mut p, s);
        // The slot entry remains allocated after delete.
        assert_eq!(total_free(&p), before - SLOT);
    }
}
