//! Heap files: unordered record collections addressed by [`Rid`].
//!
//! Layout: page 0 is the heap header (magic, record count, insertion hint);
//! pages 1.. are slotted data pages. Inserts fill the hinted page and
//! allocate a new page when it is full — the simple append discipline
//! Redbase uses. Deletions tombstone in place; their space is reclaimed by
//! in-page compaction when later inserts land on the same page.

use crate::buffer::BufferPool;
use crate::page::{FileId, PageId};
use crate::slotted::{self, SlotId};
use std::fmt;
use std::sync::Arc;
use wsq_common::{Result, WsqError};

const MAGIC: u32 = 0x5244_4246; // "RDBF"
const H_MAGIC: usize = 0;
const H_COUNT: usize = 4; // u64 record count
const H_HINT: usize = 12; // u32 insertion hint page

/// A record identifier: page number plus slot within the page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    /// Data page holding the record.
    pub page: PageId,
    /// Slot within that page.
    pub slot: SlotId,
}

impl fmt::Display for Rid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}:{}]", self.page.0, self.slot.0)
    }
}

/// An unordered collection of variable-length records in a paged file.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    file: FileId,
}

impl HeapFile {
    /// Initialize a brand-new heap in `file` (which must be empty).
    pub fn create(pool: Arc<BufferPool>, file: FileId) -> Result<Self> {
        if pool.num_pages(file)? != 0 {
            return Err(WsqError::Storage(
                "HeapFile::create requires an empty file".to_string(),
            ));
        }
        let header = pool.allocate_page(file)?;
        debug_assert_eq!(header, PageId(0));
        pool.with_page_mut(file, header, |d| {
            d[H_MAGIC..H_MAGIC + 4].copy_from_slice(&MAGIC.to_le_bytes());
            d[H_COUNT..H_COUNT + 8].copy_from_slice(&0u64.to_le_bytes());
            d[H_HINT..H_HINT + 4].copy_from_slice(&0u32.to_le_bytes());
        })?;
        Ok(HeapFile { pool, file })
    }

    /// Open an existing heap, verifying the header magic.
    pub fn open(pool: Arc<BufferPool>, file: FileId) -> Result<Self> {
        if pool.num_pages(file)? == 0 {
            return Err(WsqError::Storage("not a heap file: empty".to_string()));
        }
        let magic = pool.with_page(file, PageId(0), |d| {
            u32::from_le_bytes([d[0], d[1], d[2], d[3]])
        })?;
        if magic != MAGIC {
            return Err(WsqError::Storage("not a heap file: bad magic".to_string()));
        }
        Ok(HeapFile { pool, file })
    }

    /// The underlying file id.
    pub fn file_id(&self) -> FileId {
        self.file
    }

    /// Number of live records.
    pub fn len(&self) -> Result<u64> {
        self.pool.with_page(self.file, PageId(0), |d| {
            u64::from_le_bytes(d[H_COUNT..H_COUNT + 8].try_into().unwrap())
        })
    }

    /// True iff the heap holds no records.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    fn bump_count(&self, delta: i64) -> Result<()> {
        self.pool.with_page_mut(self.file, PageId(0), |d| {
            let n = u64::from_le_bytes(d[H_COUNT..H_COUNT + 8].try_into().unwrap());
            let n = (n as i64 + delta) as u64;
            d[H_COUNT..H_COUNT + 8].copy_from_slice(&n.to_le_bytes());
        })
    }

    fn hint(&self) -> Result<u32> {
        self.pool.with_page(self.file, PageId(0), |d| {
            u32::from_le_bytes(d[H_HINT..H_HINT + 4].try_into().unwrap())
        })
    }

    fn set_hint(&self, page: u32) -> Result<()> {
        self.pool.with_page_mut(self.file, PageId(0), |d| {
            d[H_HINT..H_HINT + 4].copy_from_slice(&page.to_le_bytes());
        })
    }

    /// Insert a record, returning its id.
    pub fn insert(&self, rec: &[u8]) -> Result<Rid> {
        if rec.len() > slotted::max_record_len(crate::page::PAGE_SIZE) {
            return Err(WsqError::Storage(format!(
                "record of {} bytes exceeds page capacity",
                rec.len()
            )));
        }
        let hint = self.hint()?;
        if hint != 0 {
            let page = PageId(hint);
            let slot = self
                .pool
                .with_page_mut(self.file, page, |d| slotted::insert(d, rec))?;
            if let Some(slot) = slot {
                self.bump_count(1)?;
                return Ok(Rid { page, slot });
            }
        }
        // Hinted page full (or no data page yet): allocate a fresh one.
        let page = self.pool.allocate_page(self.file)?;
        let slot = self.pool.with_page_mut(self.file, page, |d| {
            slotted::init(d);
            slotted::insert(d, rec)
        })?;
        let slot = slot.expect("fresh page must accept a max-size record");
        self.set_hint(page.0)?;
        self.bump_count(1)?;
        Ok(Rid { page, slot })
    }

    /// Fetch a record's bytes. Errors if the rid is dangling.
    pub fn get(&self, rid: Rid) -> Result<Vec<u8>> {
        self.check_data_page(rid.page)?;
        let rec = self.pool.with_page(self.file, rid.page, |d| {
            slotted::get(d, rid.slot).map(<[u8]>::to_vec)
        })?;
        rec.ok_or_else(|| WsqError::Storage(format!("no record at {rid}")))
    }

    /// Delete a record. Errors if the rid is dangling.
    pub fn delete(&self, rid: Rid) -> Result<()> {
        self.check_data_page(rid.page)?;
        let ok = self
            .pool
            .with_page_mut(self.file, rid.page, |d| slotted::delete(d, rid.slot))?;
        if !ok {
            return Err(WsqError::Storage(format!("no record at {rid}")));
        }
        self.bump_count(-1)
    }

    /// Update a record in place when possible; otherwise move it, returning
    /// the (possibly new) rid.
    pub fn update(&self, rid: Rid, rec: &[u8]) -> Result<Rid> {
        self.check_data_page(rid.page)?;
        let in_place = self.pool.with_page_mut(self.file, rid.page, |d| {
            match slotted::update(d, rid.slot, rec) {
                Ok(true) => Ok(true),
                Ok(false) => Err(WsqError::Storage(format!("no record at {rid}"))),
                Err(_) => Ok(false), // does not fit here: move it
            }
        })??;
        if in_place {
            return Ok(rid);
        }
        self.delete(rid)?;
        self.insert(rec)
    }

    fn check_data_page(&self, page: PageId) -> Result<()> {
        let n = self.pool.num_pages(self.file)?;
        if page.0 == 0 || page.0 >= n {
            return Err(WsqError::Storage(format!(
                "page {page} is not a data page of this heap"
            )));
        }
        Ok(())
    }

    /// Find the first live record at or after position `(page, slot)`.
    ///
    /// This powers external cursors (e.g. the engine's SeqScan executor)
    /// that cannot hold a borrowing iterator across calls: keep `(page,
    /// slot)` state and call with `(rid.page.0, rid.slot.0 + 1)` to
    /// advance.
    pub fn next_from(&self, page: u32, slot: u16) -> Result<Option<(Rid, Vec<u8>)>> {
        let num_pages = self.pool.num_pages(self.file)?;
        let mut page = page.max(1);
        let mut slot = slot;
        while page < num_pages {
            let pid = PageId(page);
            let found = self.pool.with_page(self.file, pid, |d| {
                let n = slotted::slot_count(d);
                let mut s = slot;
                while s < n {
                    if let Some(rec) = slotted::get(d, SlotId(s)) {
                        return Some((s, rec.to_vec()));
                    }
                    s += 1;
                }
                None
            })?;
            if let Some((s, rec)) = found {
                return Ok(Some((
                    Rid {
                        page: pid,
                        slot: SlotId(s),
                    },
                    rec,
                )));
            }
            page += 1;
            slot = 0;
        }
        Ok(None)
    }

    /// Scan every live record. Records are copied out so no page lock is
    /// held between iterator steps.
    pub fn scan(&self) -> HeapScan<'_> {
        HeapScan {
            heap: self,
            page: 1,
            slot: 0,
            done: false,
        }
    }
}

/// Iterator over `(Rid, record bytes)` of a heap file, page by page.
pub struct HeapScan<'a> {
    heap: &'a HeapFile,
    page: u32,
    slot: u16,
    done: bool,
}

impl Iterator for HeapScan<'_> {
    type Item = Result<(Rid, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            let num_pages = match self.heap.pool.num_pages(self.heap.file) {
                Ok(n) => n,
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            };
            if self.page >= num_pages {
                self.done = true;
                return None;
            }
            let page = PageId(self.page);
            let found = self.heap.pool.with_page(self.heap.file, page, |d| {
                let n = slotted::slot_count(d);
                let mut s = self.slot;
                while s < n {
                    if let Some(rec) = slotted::get(d, SlotId(s)) {
                        return Some((s, rec.to_vec()));
                    }
                    s += 1;
                }
                None
            });
            match found {
                Ok(Some((s, rec))) => {
                    self.slot = s + 1;
                    return Some(Ok((
                        Rid {
                            page,
                            slot: SlotId(s),
                        },
                        rec,
                    )));
                }
                Ok(None) => {
                    self.page += 1;
                    self.slot = 0;
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemStorage;

    fn heap() -> HeapFile {
        let pool = Arc::new(BufferPool::new(8));
        let file = pool.register_file(Box::new(MemStorage::new()));
        HeapFile::create(pool, file).unwrap()
    }

    #[test]
    fn insert_get_delete() {
        let h = heap();
        let r1 = h.insert(b"alpha").unwrap();
        let r2 = h.insert(b"beta").unwrap();
        assert_eq!(h.get(r1).unwrap(), b"alpha");
        assert_eq!(h.get(r2).unwrap(), b"beta");
        assert_eq!(h.len().unwrap(), 2);
        h.delete(r1).unwrap();
        assert!(h.get(r1).is_err());
        assert_eq!(h.len().unwrap(), 1);
        assert!(h.delete(r1).is_err());
    }

    #[test]
    fn spans_multiple_pages() {
        let h = heap();
        let rec = vec![1u8; 1000];
        let rids: Vec<Rid> = (0..20).map(|_| h.insert(&rec).unwrap()).collect();
        let pages: std::collections::HashSet<u32> = rids.iter().map(|r| r.page.0).collect();
        assert!(pages.len() >= 5, "1000-byte records, ~4 per page");
        for rid in &rids {
            assert_eq!(h.get(*rid).unwrap(), rec);
        }
        assert_eq!(h.len().unwrap(), 20);
    }

    #[test]
    fn scan_sees_all_live_records_in_rid_order() {
        let h = heap();
        let mut rids = Vec::new();
        for i in 0..50u8 {
            rids.push(h.insert(&[i; 200]).unwrap());
        }
        // Delete a few.
        h.delete(rids[3]).unwrap();
        h.delete(rids[30]).unwrap();
        let seen: Vec<(Rid, Vec<u8>)> = h.scan().map(|r| r.unwrap()).collect();
        assert_eq!(seen.len(), 48);
        // Rid order is (page, slot) ascending.
        let mut sorted = seen.clone();
        sorted.sort_by_key(|(rid, _)| *rid);
        assert_eq!(seen, sorted);
        assert!(seen
            .iter()
            .all(|(rid, _)| *rid != rids[3] && *rid != rids[30]));
    }

    #[test]
    fn scan_of_empty_heap() {
        let h = heap();
        assert_eq!(h.scan().count(), 0);
        assert!(h.is_empty().unwrap());
    }

    #[test]
    fn update_moves_when_necessary() {
        let h = heap();
        // Fill a page almost completely.
        let r = h.insert(&[7u8; 100]).unwrap();
        let _fill = h.insert(&[8u8; 3900]).unwrap();
        // Growing r beyond the page's remaining space forces a move.
        let r2 = h.update(r, &[9u8; 2000]).unwrap();
        assert_ne!(r.page, r2.page);
        assert_eq!(h.get(r2).unwrap(), vec![9u8; 2000]);
        assert!(h.get(r).is_err());
        assert_eq!(h.len().unwrap(), 2);
    }

    #[test]
    fn update_in_place_keeps_rid() {
        let h = heap();
        let r = h.insert(b"0123456789").unwrap();
        let r2 = h.update(r, b"xyz").unwrap();
        assert_eq!(r, r2);
        assert_eq!(h.get(r).unwrap(), b"xyz");
    }

    #[test]
    fn reopen_preserves_contents() {
        let pool = Arc::new(BufferPool::new(8));
        let file = pool.register_file(Box::new(MemStorage::new()));
        let rid;
        {
            let h = HeapFile::create(pool.clone(), file).unwrap();
            rid = h.insert(b"persist me").unwrap();
        }
        let h = HeapFile::open(pool, file).unwrap();
        assert_eq!(h.get(rid).unwrap(), b"persist me");
        assert_eq!(h.len().unwrap(), 1);
    }

    #[test]
    fn open_rejects_non_heap() {
        let pool = Arc::new(BufferPool::new(8));
        let file = pool.register_file(Box::new(MemStorage::new()));
        assert!(HeapFile::open(pool.clone(), file).is_err()); // empty
        pool.allocate_page(file).unwrap();
        assert!(HeapFile::open(pool, file).is_err()); // bad magic
    }

    #[test]
    fn dangling_rids_rejected() {
        let h = heap();
        let bogus = Rid {
            page: PageId(0),
            slot: SlotId(0),
        };
        assert!(h.get(bogus).is_err(), "header page is not addressable");
        let bogus2 = Rid {
            page: PageId(99),
            slot: SlotId(0),
        };
        assert!(h.get(bogus2).is_err());
    }

    #[test]
    fn oversized_record_rejected() {
        let h = heap();
        let huge = vec![0u8; crate::page::PAGE_SIZE];
        assert!(h.insert(&huge).is_err());
    }
}
