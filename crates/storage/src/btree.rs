//! A disk-based B+-tree index mapping order-preserving key bytes to
//! [`Rid`]s — the IX component of the Redbase substrate.
//!
//! Design notes:
//!
//! * **Non-unique**: entries are ordered by `(key, rid)`, so duplicate
//!   keys are fine and lookups are range scans `[key, key]`.
//! * **Variable-length keys** stored as sequential cells inside each 4 KiB
//!   node page; inserts shift cell bytes (O(page), which is cheap at this
//!   page size and keeps the layout simple and robust).
//! * **Splits** propagate up through an explicit descent stack; a root
//!   split allocates a fresh root. The root page id lives in the index
//!   header (page 0).
//! * **Deletes** remove the leaf entry without rebalancing (lazy deletion,
//!   as many production trees do); underfull pages are reclaimed only by
//!   a rebuild.
//!
//! Page layout:
//!
//! ```text
//! header page 0:  [magic u32][root u32]
//! node page:      [kind u8][nkeys u16][link u32][cell]*
//!   leaf cell:     [klen u16][key][page u32][slot u16]      (entry → rid)
//!   internal cell: [klen u16][key][child u32]                (right child)
//! ```
//!
//! For an internal node, `link` is the leftmost child (subtree with keys
//! `<` the first cell's key); each cell's child holds keys `>=` its key.
//! For a leaf, `link` is the next leaf (0 = none; page 0 is the header so
//! the value is unambiguous).

use crate::buffer::BufferPool;
use crate::heap::Rid;
use crate::page::{FileId, PageId, PAGE_SIZE};
use crate::slotted::SlotId;
use std::sync::Arc;
use wsq_common::{Result, WsqError};

const MAGIC: u32 = 0x5752_4958; // "WRIX"
const KIND_LEAF: u8 = 1;
const KIND_INTERNAL: u8 = 0;
const HDR: usize = 7; // kind + nkeys + link

fn read_u16(d: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([d[at], d[at + 1]])
}
fn read_u32(d: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([d[at], d[at + 1], d[at + 2], d[at + 3]])
}

/// An entry as stored in a node.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Cell {
    key: Vec<u8>,
    /// Leaf: the rid. Internal: the right child page in `rid.page`.
    rid: Rid,
}

impl Cell {
    fn leaf_size(&self) -> usize {
        2 + self.key.len() + 6
    }
    fn internal_size(&self) -> usize {
        2 + self.key.len() + 4
    }
}

/// Decoded node contents (nodes are small; decoding to a Vec keeps the
/// mutation logic simple and safe).
#[derive(Debug)]
struct Node {
    leaf: bool,
    link: u32,
    cells: Vec<Cell>,
}

impl Node {
    fn decode(d: &[u8]) -> Node {
        let leaf = d[0] == KIND_LEAF;
        let nkeys = read_u16(d, 1) as usize;
        let link = read_u32(d, 3);
        let mut cells = Vec::with_capacity(nkeys);
        let mut at = HDR;
        for _ in 0..nkeys {
            let klen = read_u16(d, at) as usize;
            at += 2;
            let key = d[at..at + klen].to_vec();
            at += klen;
            let rid = if leaf {
                let page = read_u32(d, at);
                let slot = read_u16(d, at + 4);
                at += 6;
                Rid {
                    page: PageId(page),
                    slot: SlotId(slot),
                }
            } else {
                let child = read_u32(d, at);
                at += 4;
                Rid {
                    page: PageId(child),
                    slot: SlotId(0),
                }
            };
            cells.push(Cell { key, rid });
        }
        Node { leaf, link, cells }
    }

    fn encode(&self, d: &mut [u8]) {
        d[0] = if self.leaf { KIND_LEAF } else { KIND_INTERNAL };
        d[1..3].copy_from_slice(&(self.cells.len() as u16).to_le_bytes());
        d[3..7].copy_from_slice(&self.link.to_le_bytes());
        let mut at = HDR;
        for c in &self.cells {
            d[at..at + 2].copy_from_slice(&(c.key.len() as u16).to_le_bytes());
            at += 2;
            d[at..at + c.key.len()].copy_from_slice(&c.key);
            at += c.key.len();
            if self.leaf {
                d[at..at + 4].copy_from_slice(&c.rid.page.0.to_le_bytes());
                d[at + 4..at + 6].copy_from_slice(&c.rid.slot.0.to_le_bytes());
                at += 6;
            } else {
                d[at..at + 4].copy_from_slice(&c.rid.page.0.to_le_bytes());
                at += 4;
            }
        }
    }

    fn bytes_used(&self) -> usize {
        HDR + self
            .cells
            .iter()
            .map(|c| {
                if self.leaf {
                    c.leaf_size()
                } else {
                    c.internal_size()
                }
            })
            .sum::<usize>()
    }

    /// First cell index whose `(key, rid)` is `>=` the probe.
    fn lower_bound(&self, key: &[u8], rid: Option<Rid>) -> usize {
        self.cells
            .partition_point(|c| match c.key.as_slice().cmp(key) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => match rid {
                    None => false,
                    Some(r) => c.rid < r,
                },
            })
    }
}

/// Largest key an index accepts; guarantees at least two entries fit in a
/// node after a split.
pub fn max_key_len() -> usize {
    (PAGE_SIZE - HDR) / 2 - 16
}

/// A B+-tree index over `(key bytes, rid)` entries.
pub struct BTree {
    pool: Arc<BufferPool>,
    file: FileId,
}

impl BTree {
    /// Initialize a fresh index in an empty file.
    pub fn create(pool: Arc<BufferPool>, file: FileId) -> Result<BTree> {
        if pool.num_pages(file)? != 0 {
            return Err(WsqError::Storage(
                "BTree::create requires an empty file".to_string(),
            ));
        }
        let header = pool.allocate_page(file)?;
        debug_assert_eq!(header, PageId(0));
        let root = pool.allocate_page(file)?;
        pool.with_page_mut(file, root, |d| {
            Node {
                leaf: true,
                link: 0,
                cells: vec![],
            }
            .encode(d)
        })?;
        pool.with_page_mut(file, header, |d| {
            d[0..4].copy_from_slice(&MAGIC.to_le_bytes());
            d[4..8].copy_from_slice(&root.0.to_le_bytes());
        })?;
        Ok(BTree { pool, file })
    }

    /// Open an existing index.
    pub fn open(pool: Arc<BufferPool>, file: FileId) -> Result<BTree> {
        if pool.num_pages(file)? < 2 {
            return Err(WsqError::Storage("not a btree file".to_string()));
        }
        let magic = pool.with_page(file, PageId(0), |d| read_u32(d, 0))?;
        if magic != MAGIC {
            return Err(WsqError::Storage("not a btree file: bad magic".to_string()));
        }
        Ok(BTree { pool, file })
    }

    /// The underlying file.
    pub fn file_id(&self) -> FileId {
        self.file
    }

    fn root(&self) -> Result<u32> {
        self.pool
            .with_page(self.file, PageId(0), |d| read_u32(d, 4))
    }

    fn set_root(&self, root: u32) -> Result<()> {
        self.pool.with_page_mut(self.file, PageId(0), |d| {
            d[4..8].copy_from_slice(&root.to_le_bytes())
        })
    }

    fn load(&self, page: u32) -> Result<Node> {
        self.pool.with_page(self.file, PageId(page), Node::decode)
    }

    fn store(&self, page: u32, node: &Node) -> Result<()> {
        self.pool
            .with_page_mut(self.file, PageId(page), |d| node.encode(d))
    }

    /// Insert an entry. Duplicate `(key, rid)` pairs are rejected.
    pub fn insert(&self, key: &[u8], rid: Rid) -> Result<()> {
        if key.len() > max_key_len() {
            return Err(WsqError::Storage(format!(
                "index key of {} bytes exceeds the maximum of {}",
                key.len(),
                max_key_len()
            )));
        }
        // Descend to the target leaf, remembering the path.
        let mut path: Vec<u32> = Vec::new();
        let mut page = self.root()?;
        loop {
            let node = self.load(page)?;
            if node.leaf {
                break;
            }
            path.push(page);
            let idx = node.lower_bound(key, Some(rid));
            page = if idx == 0 {
                node.link
            } else {
                node.cells[idx - 1].rid.page.0
            };
        }

        let mut node = self.load(page)?;
        let pos = node.lower_bound(key, Some(rid));
        if node
            .cells
            .get(pos)
            .is_some_and(|c| c.key == key && c.rid == rid)
        {
            return Err(WsqError::Storage("duplicate index entry".to_string()));
        }
        node.cells.insert(
            pos,
            Cell {
                key: key.to_vec(),
                rid,
            },
        );

        // Split upward while nodes overflow.
        let mut split: Option<(Vec<u8>, u32)> = None; // (separator, new right page)
        if node.bytes_used() > PAGE_SIZE {
            split = Some(self.split(page, &mut node)?);
        }
        self.store(page, &node)?;

        while let Some((sep, right)) = split.take() {
            match path.pop() {
                Some(parent_page) => {
                    let mut parent = self.load(parent_page)?;
                    let idx = parent.lower_bound(&sep, None);
                    parent.cells.insert(
                        idx,
                        Cell {
                            key: sep,
                            rid: Rid {
                                page: PageId(right),
                                slot: SlotId(0),
                            },
                        },
                    );
                    if parent.bytes_used() > PAGE_SIZE {
                        split = Some(self.split(parent_page, &mut parent)?);
                    }
                    self.store(parent_page, &parent)?;
                }
                None => {
                    // Root split: the old root (leaf or internal) becomes
                    // the leftmost child of a new root.
                    let old_root = if path.is_empty() { page } else { self.root()? };
                    let new_root_page = self.pool.allocate_page(self.file)?;
                    let new_root = Node {
                        leaf: false,
                        link: old_root,
                        cells: vec![Cell {
                            key: sep,
                            rid: Rid {
                                page: PageId(right),
                                slot: SlotId(0),
                            },
                        }],
                    };
                    self.store(new_root_page.0, &new_root)?;
                    self.set_root(new_root_page.0)?;
                }
            }
        }
        Ok(())
    }

    /// Split `node` (stored at `page`), returning `(separator, right page)`.
    fn split(&self, page: u32, node: &mut Node) -> Result<(Vec<u8>, u32)> {
        let mid = node.cells.len() / 2;
        let right_page = self.pool.allocate_page(self.file)?;
        let (sep, right) = if node.leaf {
            let right_cells: Vec<Cell> = node.cells.split_off(mid);
            let sep = right_cells[0].key.clone();
            let right = Node {
                leaf: true,
                link: node.link,
                cells: right_cells,
            };
            node.link = right_page.0;
            (sep, right)
        } else {
            // The middle key moves up; its right child becomes the new
            // node's leftmost child.
            let mut right_cells: Vec<Cell> = node.cells.split_off(mid);
            let middle = right_cells.remove(0);
            let right = Node {
                leaf: false,
                link: middle.rid.page.0,
                cells: right_cells,
            };
            (middle.key, right)
        };
        self.store(right_page.0, &right)?;
        let _ = page;
        Ok((sep, right_page.0))
    }

    /// All rids whose key equals `key`, in rid order.
    pub fn search(&self, key: &[u8]) -> Result<Vec<Rid>> {
        let mut out = Vec::new();
        self.scan_range(key, key, |_, rid| out.push(rid))?;
        Ok(out)
    }

    /// Visit every entry with `low <= key <= high` in key order.
    pub fn scan_range(
        &self,
        low: &[u8],
        high: &[u8],
        mut visit: impl FnMut(&[u8], Rid),
    ) -> Result<()> {
        // Descend to the leaf that could contain `low`.
        let mut page = self.root()?;
        loop {
            let node = self.load(page)?;
            if node.leaf {
                break;
            }
            let idx = node.lower_bound(low, None);
            page = if idx == 0 {
                node.link
            } else {
                node.cells[idx - 1].rid.page.0
            };
        }
        loop {
            let node = self.load(page)?;
            for c in &node.cells {
                if c.key.as_slice() > high {
                    return Ok(());
                }
                if c.key.as_slice() >= low {
                    visit(&c.key, c.rid);
                }
            }
            if node.link == 0 {
                return Ok(());
            }
            page = node.link;
        }
    }

    /// Visit every entry in key order.
    pub fn scan_all(&self, mut visit: impl FnMut(&[u8], Rid)) -> Result<()> {
        let mut page = self.root()?;
        loop {
            let node = self.load(page)?;
            if node.leaf {
                break;
            }
            page = node.link;
        }
        loop {
            let node = self.load(page)?;
            for c in &node.cells {
                visit(&c.key, c.rid);
            }
            if node.link == 0 {
                return Ok(());
            }
            page = node.link;
        }
    }

    /// Remove the entry `(key, rid)`. Returns whether it existed. Lazy:
    /// no rebalancing.
    pub fn delete(&self, key: &[u8], rid: Rid) -> Result<bool> {
        let mut page = self.root()?;
        loop {
            let node = self.load(page)?;
            if node.leaf {
                break;
            }
            let idx = node.lower_bound(key, Some(rid));
            page = if idx == 0 {
                node.link
            } else {
                node.cells[idx - 1].rid.page.0
            };
        }
        let mut node = self.load(page)?;
        let pos = node.lower_bound(key, Some(rid));
        if node
            .cells
            .get(pos)
            .is_some_and(|c| c.key == key && c.rid == rid)
        {
            node.cells.remove(pos);
            self.store(page, &node)?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Number of entries (full scan; for tests and stats).
    pub fn len(&self) -> Result<usize> {
        let mut n = 0;
        self.scan_all(|_, _| n += 1)?;
        Ok(n)
    }

    /// True iff the index has no entries.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Tree height (root to leaf), for structural tests.
    pub fn height(&self) -> Result<usize> {
        let mut h = 1;
        let mut page = self.root()?;
        loop {
            let node = self.load(page)?;
            if node.leaf {
                return Ok(h);
            }
            h += 1;
            page = node.link;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemStorage;

    fn tree() -> BTree {
        let pool = Arc::new(BufferPool::new(64));
        let file = pool.register_file(Box::new(MemStorage::new()));
        BTree::create(pool, file).unwrap()
    }

    fn rid(n: u32) -> Rid {
        Rid {
            page: PageId(n / 100 + 1),
            slot: SlotId((n % 100) as u16),
        }
    }

    #[test]
    fn insert_and_point_lookup() {
        let t = tree();
        t.insert(b"colorado", rid(1)).unwrap();
        t.insert(b"utah", rid(2)).unwrap();
        t.insert(b"arizona", rid(3)).unwrap();
        assert_eq!(t.search(b"utah").unwrap(), vec![rid(2)]);
        assert_eq!(t.search(b"nevada").unwrap(), vec![]);
        assert_eq!(t.len().unwrap(), 3);
    }

    #[test]
    fn duplicate_keys_different_rids() {
        let t = tree();
        t.insert(b"jackson", rid(10)).unwrap();
        t.insert(b"jackson", rid(5)).unwrap();
        t.insert(b"jackson", rid(7)).unwrap();
        assert_eq!(t.search(b"jackson").unwrap(), vec![rid(5), rid(7), rid(10)]);
        // Identical (key, rid) rejected.
        assert!(t.insert(b"jackson", rid(5)).is_err());
    }

    #[test]
    fn splits_maintain_order_and_completeness() {
        let t = tree();
        // Enough entries to force multiple levels (keys ~40 bytes →
        // ~80 entries/leaf).
        let n = 2000u32;
        for i in 0..n {
            let key = format!("key-{:08}-padding-padding-padding", i * 7919 % n);
            t.insert(key.as_bytes(), rid(i)).unwrap();
        }
        assert_eq!(t.len().unwrap(), n as usize);
        assert!(t.height().unwrap() >= 2, "tree should have split");
        // Full scan is sorted.
        let mut prev: Option<Vec<u8>> = None;
        t.scan_all(|k, _| {
            if let Some(p) = &prev {
                assert!(p.as_slice() <= k);
            }
            prev = Some(k.to_vec());
        })
        .unwrap();
        // Every key findable.
        for i in (0..n).step_by(97) {
            let key = format!("key-{:08}-padding-padding-padding", i * 7919 % n);
            assert_eq!(t.search(key.as_bytes()).unwrap().len(), 1, "{key}");
        }
    }

    #[test]
    fn range_scan() {
        let t = tree();
        for i in 0..100u32 {
            t.insert(format!("k{i:03}").as_bytes(), rid(i)).unwrap();
        }
        let mut seen = Vec::new();
        t.scan_range(b"k010", b"k019", |k, _| {
            seen.push(String::from_utf8(k.to_vec()).unwrap())
        })
        .unwrap();
        assert_eq!(seen.len(), 10);
        assert_eq!(seen[0], "k010");
        assert_eq!(seen[9], "k019");
        // Empty range.
        let mut n = 0;
        t.scan_range(b"zzz", b"zzzz", |_, _| n += 1).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn delete_removes_single_entry() {
        let t = tree();
        for i in 0..50u32 {
            t.insert(b"same", rid(i)).unwrap();
        }
        assert!(t.delete(b"same", rid(25)).unwrap());
        assert!(!t.delete(b"same", rid(25)).unwrap());
        assert_eq!(t.search(b"same").unwrap().len(), 49);
        assert!(!t.delete(b"other", rid(1)).unwrap());
    }

    #[test]
    fn reopen_preserves_tree() {
        let pool = Arc::new(BufferPool::new(64));
        let file = pool.register_file(Box::new(MemStorage::new()));
        {
            let t = BTree::create(pool.clone(), file).unwrap();
            for i in 0..500u32 {
                t.insert(format!("key{i:05}").as_bytes(), rid(i)).unwrap();
            }
        }
        let t = BTree::open(pool, file).unwrap();
        assert_eq!(t.len().unwrap(), 500);
        assert_eq!(t.search(b"key00321").unwrap(), vec![rid(321)]);
    }

    #[test]
    fn oversized_key_rejected() {
        let t = tree();
        let big = vec![b'x'; max_key_len() + 1];
        assert!(t.insert(&big, rid(1)).is_err());
        let ok = vec![b'x'; max_key_len()];
        t.insert(&ok, rid(1)).unwrap();
        assert_eq!(t.search(&ok).unwrap(), vec![rid(1)]);
    }

    #[test]
    fn empty_and_single_key_edge_cases() {
        let t = tree();
        assert!(t.is_empty().unwrap());
        t.insert(b"", rid(1)).unwrap(); // empty key is legal
        assert_eq!(t.search(b"").unwrap(), vec![rid(1)]);
        assert_eq!(t.height().unwrap(), 1);
    }
}
