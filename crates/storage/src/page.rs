//! Page-level constants and identifiers.

use std::fmt;

/// Size of every page, in bytes. Matches classic textbook/Redbase sizing.
pub const PAGE_SIZE: usize = 4096;

/// A page's index within its file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifier of a file registered with the buffer pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// An owned page-sized buffer.
///
/// Boxed so moving a `PageBuf` never copies 4 KiB on the stack (see the
/// perf-book guidance on large stack values).
pub type PageBuf = Box<[u8; PAGE_SIZE]>;

/// Allocate a zeroed page buffer.
pub fn zeroed_page() -> PageBuf {
    // `vec!` allocates directly on the heap; converting preserves the
    // allocation without a stack round-trip.
    vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page_is_zeroed_and_sized() {
        let p = zeroed_page();
        assert_eq!(p.len(), PAGE_SIZE);
        assert!(p.iter().all(|&b| b == 0));
    }

    #[test]
    fn id_display() {
        assert_eq!(PageId(7).to_string(), "p7");
        assert_eq!(FileId(2).to_string(), "f2");
    }
}
