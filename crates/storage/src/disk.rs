//! Per-file page storage: on-disk and in-memory backends.

use crate::page::{zeroed_page, PageBuf, PageId, PAGE_SIZE};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use wsq_common::{Result, WsqError};

/// Abstraction over a single file's page storage.
///
/// The buffer pool talks to files exclusively through this trait, so tests
/// and in-memory databases can swap [`MemStorage`] for [`FileStorage`].
pub trait Storage: Send {
    /// Read page `page` into `buf`. The page must have been allocated.
    fn read_page(&mut self, page: PageId, buf: &mut PageBuf) -> Result<()>;
    /// Write `buf` to page `page`. The page must have been allocated.
    fn write_page(&mut self, page: PageId, buf: &PageBuf) -> Result<()>;
    /// Append a fresh zeroed page and return its id.
    fn allocate_page(&mut self) -> Result<PageId>;
    /// Number of allocated pages.
    fn num_pages(&self) -> u32;
    /// Flush any buffered writes to durable storage.
    fn sync(&mut self) -> Result<()>;
}

/// File-backed page storage. Pages live at offset `page_id * PAGE_SIZE`.
pub struct FileStorage {
    file: File,
    num_pages: u32,
}

impl FileStorage {
    /// Open (or create) a paged file at `path`.
    ///
    /// An existing file must have a length that is a multiple of
    /// [`PAGE_SIZE`]; anything else indicates corruption.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path.as_ref())?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(WsqError::Storage(format!(
                "file {} has length {len}, not a multiple of the page size",
                path.as_ref().display()
            )));
        }
        Ok(FileStorage {
            file,
            num_pages: (len / PAGE_SIZE as u64) as u32,
        })
    }

    fn check_bounds(&self, page: PageId) -> Result<()> {
        if page.0 >= self.num_pages {
            return Err(WsqError::Storage(format!(
                "page {page} out of bounds (file has {} pages)",
                self.num_pages
            )));
        }
        Ok(())
    }
}

impl Storage for FileStorage {
    fn read_page(&mut self, page: PageId, buf: &mut PageBuf) -> Result<()> {
        self.check_bounds(page)?;
        self.file
            .seek(SeekFrom::Start(page.0 as u64 * PAGE_SIZE as u64))?;
        self.file.read_exact(&mut buf[..])?;
        Ok(())
    }

    fn write_page(&mut self, page: PageId, buf: &PageBuf) -> Result<()> {
        self.check_bounds(page)?;
        self.file
            .seek(SeekFrom::Start(page.0 as u64 * PAGE_SIZE as u64))?;
        self.file.write_all(&buf[..])?;
        Ok(())
    }

    fn allocate_page(&mut self) -> Result<PageId> {
        let id = PageId(self.num_pages);
        self.file
            .seek(SeekFrom::Start(id.0 as u64 * PAGE_SIZE as u64))?;
        let zero = zeroed_page();
        self.file.write_all(&zero[..])?;
        self.num_pages += 1;
        Ok(id)
    }

    fn num_pages(&self) -> u32 {
        self.num_pages
    }

    fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

/// In-memory page storage, for tests and `open_in_memory` databases.
#[derive(Default)]
pub struct MemStorage {
    pages: Vec<PageBuf>,
}

impl MemStorage {
    /// A new, empty in-memory file.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Storage for MemStorage {
    fn read_page(&mut self, page: PageId, buf: &mut PageBuf) -> Result<()> {
        let src = self
            .pages
            .get(page.0 as usize)
            .ok_or_else(|| WsqError::Storage(format!("page {page} out of bounds (mem file)")))?;
        buf.copy_from_slice(&src[..]);
        Ok(())
    }

    fn write_page(&mut self, page: PageId, buf: &PageBuf) -> Result<()> {
        let dst = self
            .pages
            .get_mut(page.0 as usize)
            .ok_or_else(|| WsqError::Storage(format!("page {page} out of bounds (mem file)")))?;
        dst.copy_from_slice(&buf[..]);
        Ok(())
    }

    fn allocate_page(&mut self) -> Result<PageId> {
        self.pages.push(zeroed_page());
        Ok(PageId(self.pages.len() as u32 - 1))
    }

    fn num_pages(&self) -> u32 {
        self.pages.len() as u32
    }

    fn sync(&mut self) -> Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(storage: &mut dyn Storage) {
        let p0 = storage.allocate_page().unwrap();
        let p1 = storage.allocate_page().unwrap();
        assert_eq!(p0, PageId(0));
        assert_eq!(p1, PageId(1));
        assert_eq!(storage.num_pages(), 2);

        let mut buf = zeroed_page();
        buf[0] = 0xAB;
        buf[PAGE_SIZE - 1] = 0xCD;
        storage.write_page(p1, &buf).unwrap();

        let mut out = zeroed_page();
        storage.read_page(p1, &mut out).unwrap();
        assert_eq!(out[0], 0xAB);
        assert_eq!(out[PAGE_SIZE - 1], 0xCD);

        // Page 0 untouched.
        storage.read_page(p0, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn mem_storage_roundtrip() {
        roundtrip(&mut MemStorage::new());
    }

    #[test]
    fn file_storage_roundtrip_and_reopen() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("t.rdb");
        {
            let mut fs = FileStorage::open(&path).unwrap();
            roundtrip(&mut fs);
            fs.sync().unwrap();
        }
        // Reopen: page count and contents persist.
        let mut fs = FileStorage::open(&path).unwrap();
        assert_eq!(fs.num_pages(), 2);
        let mut out = zeroed_page();
        fs.read_page(PageId(1), &mut out).unwrap();
        assert_eq!(out[0], 0xAB);
    }

    #[test]
    fn out_of_bounds_errors() {
        let mut m = MemStorage::new();
        let mut buf = zeroed_page();
        assert!(m.read_page(PageId(0), &mut buf).is_err());
        assert!(m.write_page(PageId(3), &buf).is_err());
    }

    #[test]
    fn corrupt_length_rejected() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("bad.rdb");
        std::fs::write(&path, b"not a page").unwrap();
        assert!(FileStorage::open(&path).is_err());
    }
}
