//! Redbase-style storage substrate for WSQ/DSQ.
//!
//! The paper's prototype is built on *Redbase*, the instructional RDBMS
//! built by Stanford students: a paged file layer with a page-level buffer,
//! heap files of variable-length records, and an iterator-based executor on
//! top. This crate reproduces that substrate:
//!
//! * [`disk`] — per-file page storage ([`FileStorage`] on disk,
//!   [`MemStorage`] in memory).
//! * [`buffer`] — a shared [`BufferPool`] with LRU replacement and
//!   write-back of dirty pages, serving pages from any number of registered
//!   files.
//! * [`slotted`] — the slotted-page record layout (slot directory growing
//!   forward, record heap growing backward, tombstones, compaction).
//! * [`heap`] — [`HeapFile`]: unordered collections of records addressed by
//!   [`Rid`], with full-scan iteration.
//! * [`codec`] — serialization of [`wsq_common::Tuple`]s to records and
//!   back, driven by a [`wsq_common::Schema`].

pub mod btree;
pub mod buffer;
pub mod codec;
pub mod disk;
pub mod heap;
pub mod page;
pub mod slotted;

pub use btree::BTree;
pub use buffer::{BufferPool, PoolStats};
pub use disk::{FileStorage, MemStorage, Storage};
pub use heap::{HeapFile, Rid};
pub use page::{FileId, PageId, PAGE_SIZE};
