//! Tuple ⇄ record serialization.
//!
//! Format (little-endian throughout):
//!
//! ```text
//! [null bitmap: ceil(n/8) bytes] [field 0] [field 1] ... [field n-1]
//! ```
//!
//! Null fields occupy no bytes. `INT` and `FLOAT` are 8 bytes; `VARCHAR` is
//! a `u32` length prefix plus UTF-8 bytes. [`wsq_common::Value::Pending`]
//! values are a logic error at the storage boundary (placeholders must be
//! resolved by `ReqSync` before a tuple can be materialized) and are
//! rejected.

use wsq_common::{DataType, Result, Schema, Tuple, Value, WsqError};

/// Serialize a tuple to record bytes according to `schema`.
pub fn encode(schema: &Schema, tuple: &Tuple) -> Result<Vec<u8>> {
    if tuple.len() != schema.len() {
        return Err(WsqError::Storage(format!(
            "tuple arity {} does not match schema arity {}",
            tuple.len(),
            schema.len()
        )));
    }
    let bitmap_len = schema.len().div_ceil(8);
    let mut out = vec![0u8; bitmap_len];
    for (i, (value, col)) in tuple.values().iter().zip(schema.columns()).enumerate() {
        match value {
            Value::Null => {
                out[i / 8] |= 1 << (i % 8);
            }
            Value::Int(v) => {
                expect_type(col.dtype, DataType::Int, i)?;
                out.extend_from_slice(&v.to_le_bytes());
            }
            Value::Float(v) => {
                expect_type(col.dtype, DataType::Float, i)?;
                out.extend_from_slice(&v.to_le_bytes());
            }
            Value::Str(s) => {
                expect_type(col.dtype, DataType::Varchar, i)?;
                let len = u32::try_from(s.len())
                    .map_err(|_| WsqError::Storage("string longer than u32::MAX".to_string()))?;
                out.extend_from_slice(&len.to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Pending(p) => {
                return Err(WsqError::Storage(format!(
                    "cannot materialize unresolved placeholder {p}"
                )));
            }
        }
    }
    Ok(out)
}

fn expect_type(declared: DataType, actual: DataType, col: usize) -> Result<()> {
    if declared != actual {
        return Err(WsqError::Storage(format!(
            "column {col}: cannot store {actual} value in {declared} column"
        )));
    }
    Ok(())
}

/// Deserialize record bytes back into a tuple according to `schema`.
pub fn decode(schema: &Schema, bytes: &[u8]) -> Result<Tuple> {
    let n = schema.len();
    let bitmap_len = n.div_ceil(8);
    if bytes.len() < bitmap_len {
        return Err(WsqError::Storage(
            "record shorter than null bitmap".to_string(),
        ));
    }
    let (bitmap, mut rest) = bytes.split_at(bitmap_len);
    let mut values = Vec::with_capacity(n);
    for (i, col) in schema.columns().iter().enumerate() {
        if bitmap[i / 8] & (1 << (i % 8)) != 0 {
            values.push(Value::Null);
            continue;
        }
        match col.dtype {
            DataType::Int => {
                let (head, tail) = take(rest, 8, i)?;
                values.push(Value::Int(i64::from_le_bytes(head.try_into().unwrap())));
                rest = tail;
            }
            DataType::Float => {
                let (head, tail) = take(rest, 8, i)?;
                values.push(Value::Float(f64::from_le_bytes(head.try_into().unwrap())));
                rest = tail;
            }
            DataType::Varchar => {
                let (lenb, tail) = take(rest, 4, i)?;
                let len = u32::from_le_bytes(lenb.try_into().unwrap()) as usize;
                let (sb, tail) = take(tail, len, i)?;
                let s = std::str::from_utf8(sb).map_err(|_| {
                    WsqError::Storage(format!("column {i}: invalid UTF-8 in record"))
                })?;
                values.push(Value::Str(s.to_string()));
                rest = tail;
            }
        }
    }
    if !rest.is_empty() {
        return Err(WsqError::Storage(format!(
            "{} trailing bytes after decoding record",
            rest.len()
        )));
    }
    Ok(Tuple::new(values))
}

/// Encode a value as bytes whose lexicographic order matches
/// [`Value::compare`] — the key format for B+-tree indexes.
///
/// * Type tag first (NULL < numbers < strings, as in `Value::compare`).
/// * Integers: offset-binary (sign bit flipped), big-endian.
/// * Floats: IEEE-754 total-order trick (flip all bits for negatives, flip
///   the sign bit for positives), big-endian. Ints and floats encode under
///   the same numeric tag via the float path so `2` and `2.5` order
///   correctly against each other (index keys come from one declared
///   column type, so the f64 round-trip through `i64` is exact for the
///   values a column realistically holds; see `encode_key` tests).
/// * Strings: raw UTF-8 bytes (prefix ordering is correct for keys that
///   are compared in full).
pub fn encode_key(value: &Value) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(10);
    match value {
        Value::Null => out.push(0x00),
        Value::Int(i) => {
            out.push(0x01);
            out.extend_from_slice(&total_order_f64(*i as f64));
        }
        Value::Float(f) => {
            out.push(0x01);
            out.extend_from_slice(&total_order_f64(*f));
        }
        Value::Str(s) => {
            out.push(0x02);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Pending(p) => {
            return Err(WsqError::Storage(format!(
                "cannot index unresolved placeholder {p}"
            )));
        }
    }
    Ok(out)
}

/// IEEE-754 total-order encoding: big-endian bits, with all bits flipped
/// for negative values and the sign bit flipped for non-negatives.
fn total_order_f64(f: f64) -> [u8; 8] {
    let bits = f.to_bits();
    let ordered = if bits & 0x8000_0000_0000_0000 != 0 {
        !bits
    } else {
        bits | 0x8000_0000_0000_0000
    };
    ordered.to_be_bytes()
}

fn take(bytes: &[u8], n: usize, col: usize) -> Result<(&[u8], &[u8])> {
    if bytes.len() < n {
        return Err(WsqError::Storage(format!(
            "column {col}: record truncated (need {n} bytes, have {})",
            bytes.len()
        )));
    }
    Ok(bytes.split_at(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsq_common::{CallId, Column, PendingCol, Placeholder};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("name", DataType::Varchar),
            Column::new("pop", DataType::Int),
            Column::new("ratio", DataType::Float),
        ])
    }

    #[test]
    fn roundtrip_basic() {
        let s = schema();
        let t = Tuple::new(vec![
            Value::from("California"),
            Value::Int(32_682_794),
            Value::Float(0.125),
        ]);
        let bytes = encode(&s, &t).unwrap();
        assert_eq!(decode(&s, &bytes).unwrap(), t);
    }

    #[test]
    fn roundtrip_nulls_everywhere() {
        let s = schema();
        let t = Tuple::new(vec![Value::Null, Value::Null, Value::Null]);
        let bytes = encode(&s, &t).unwrap();
        assert_eq!(bytes.len(), 1); // just the bitmap
        assert_eq!(decode(&s, &bytes).unwrap(), t);
    }

    #[test]
    fn roundtrip_empty_and_unicode_strings() {
        let s = Schema::new(vec![Column::new("s", DataType::Varchar)]);
        for text in ["", "héllo wörld", "四つ角", "a\nb\tc"] {
            let t = Tuple::new(vec![Value::from(text)]);
            let bytes = encode(&s, &t).unwrap();
            assert_eq!(decode(&s, &bytes).unwrap(), t);
        }
    }

    #[test]
    fn arity_mismatch_rejected() {
        let s = schema();
        let t = Tuple::new(vec![Value::Int(1)]);
        assert!(encode(&s, &t).is_err());
    }

    #[test]
    fn type_mismatch_rejected() {
        let s = schema();
        let t = Tuple::new(vec![Value::Int(1), Value::Int(2), Value::Float(3.0)]);
        let err = encode(&s, &t).unwrap_err();
        assert!(err.to_string().contains("column 0"));
    }

    #[test]
    fn pending_values_rejected() {
        let s = Schema::new(vec![Column::new("c", DataType::Int)]);
        let t = Tuple::new(vec![Value::Pending(Placeholder {
            call: CallId(1),
            col: PendingCol::Count,
        })]);
        assert!(encode(&s, &t).is_err());
    }

    #[test]
    fn truncated_records_rejected() {
        let s = schema();
        let t = Tuple::new(vec![Value::from("abc"), Value::Int(5), Value::Null]);
        let bytes = encode(&s, &t).unwrap();
        for cut in 0..bytes.len() {
            assert!(
                decode(&s, &bytes[..cut]).is_err(),
                "decoding a {cut}-byte prefix should fail"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let s = Schema::new(vec![Column::new("c", DataType::Int)]);
        let t = Tuple::new(vec![Value::Int(7)]);
        let mut bytes = encode(&s, &t).unwrap();
        bytes.push(0xFF);
        assert!(decode(&s, &bytes).is_err());
    }

    #[test]
    fn key_encoding_preserves_value_order() {
        let values = vec![
            Value::Null,
            Value::Float(f64::NEG_INFINITY),
            Value::Int(i64::MIN / 2),
            Value::Float(-1e18),
            Value::Int(-42),
            Value::Float(-1.5),
            Value::Float(-0.0),
            Value::Int(0),
            Value::Float(0.5),
            Value::Int(1),
            Value::Float(1.5),
            Value::Int(2),
            Value::Int(1_000_000),
            Value::Float(f64::INFINITY),
            Value::Str("".into()),
            Value::Str("a".into()),
            Value::Str("ab".into()),
            Value::Str("b".into()),
        ];
        let keys: Vec<Vec<u8>> = values.iter().map(|v| encode_key(v).unwrap()).collect();
        for i in 0..values.len() {
            for j in 0..values.len() {
                let vo = values[i].compare(&values[j]).unwrap();
                let ko = keys[i].cmp(&keys[j]);
                // -0.0 and 0 compare Equal as values but differ as keys;
                // allow key order to refine value ties.
                if vo != std::cmp::Ordering::Equal {
                    assert_eq!(ko, vo, "{} vs {}", values[i], values[j]);
                }
            }
        }
    }

    #[test]
    fn key_encoding_rejects_pending() {
        let v = Value::Pending(Placeholder {
            call: CallId(1),
            col: PendingCol::Count,
        });
        assert!(encode_key(&v).is_err());
    }

    #[test]
    fn extreme_numeric_values() {
        let s = Schema::new(vec![
            Column::new("i", DataType::Int),
            Column::new("f", DataType::Float),
        ]);
        for (i, f) in [
            (i64::MIN, f64::MIN),
            (i64::MAX, f64::MAX),
            (0, -0.0),
            (-1, f64::INFINITY),
        ] {
            let t = Tuple::new(vec![Value::Int(i), Value::Float(f)]);
            let bytes = encode(&s, &t).unwrap();
            assert_eq!(decode(&s, &bytes).unwrap(), t);
        }
    }
}
