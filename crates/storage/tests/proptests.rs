//! Property-based tests for the storage substrate.
//!
//! These exercise the invariants that the unit tests only spot-check:
//! codec roundtrips over arbitrary tuples, slotted pages under arbitrary
//! op sequences, and heap files behaving like an in-memory map from rid to
//! bytes regardless of page boundaries or buffer pool pressure.

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use wsq_common::{Column, DataType, Schema, Tuple, Value};
use wsq_storage::buffer::BufferPool;
use wsq_storage::codec::{decode, encode};
use wsq_storage::disk::MemStorage;
use wsq_storage::heap::HeapFile;
use wsq_storage::page::PAGE_SIZE;
use wsq_storage::slotted;

fn arb_value(dtype: DataType) -> BoxedStrategy<Value> {
    match dtype {
        DataType::Int => prop_oneof![Just(Value::Null), any::<i64>().prop_map(Value::Int)].boxed(),
        DataType::Float => prop_oneof![
            Just(Value::Null),
            any::<f64>()
                .prop_filter("no NaN (Eq)", |f| !f.is_nan())
                .prop_map(Value::Float)
        ]
        .boxed(),
        DataType::Varchar => {
            prop_oneof![Just(Value::Null), ".{0,64}".prop_map(Value::from)].boxed()
        }
    }
}

fn arb_schema_and_tuple() -> impl Strategy<Value = (Schema, Tuple)> {
    prop::collection::vec(
        prop_oneof![
            Just(DataType::Int),
            Just(DataType::Float),
            Just(DataType::Varchar)
        ],
        0..10,
    )
    .prop_flat_map(|dtypes| {
        let schema = Schema::new(
            dtypes
                .iter()
                .enumerate()
                .map(|(i, dt)| Column::new(format!("c{i}"), *dt))
                .collect(),
        );
        let values: Vec<BoxedStrategy<Value>> = dtypes.iter().map(|dt| arb_value(*dt)).collect();
        (Just(schema), values).prop_map(|(s, v)| (s, Tuple::new(v)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn codec_roundtrips((schema, tuple) in arb_schema_and_tuple()) {
        let bytes = encode(&schema, &tuple).unwrap();
        let back = decode(&schema, &bytes).unwrap();
        prop_assert_eq!(back, tuple);
    }

    #[test]
    fn codec_rejects_any_truncation((schema, tuple) in arb_schema_and_tuple()) {
        let bytes = encode(&schema, &tuple).unwrap();
        if !bytes.is_empty() {
            // Any strict prefix must fail to decode (no silent partial reads).
            let cut = bytes.len() - 1;
            prop_assert!(decode(&schema, &bytes[..cut]).is_err());
        }
    }
}

/// Operations applied to a slotted page in the model-based test.
#[derive(Debug, Clone)]
enum PageOp {
    Insert(Vec<u8>),
    Delete(usize),
    Update(usize, Vec<u8>),
}

fn arb_page_op() -> impl Strategy<Value = PageOp> {
    prop_oneof![
        prop::collection::vec(any::<u8>(), 0..300).prop_map(PageOp::Insert),
        (0..64usize).prop_map(PageOp::Delete),
        (0..64usize, prop::collection::vec(any::<u8>(), 0..300))
            .prop_map(|(i, r)| PageOp::Update(i, r)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Model-based test: a slotted page behaves like a map slot→bytes.
    #[test]
    fn slotted_page_matches_model(ops in prop::collection::vec(arb_page_op(), 1..80)) {
        let mut page = vec![0u8; PAGE_SIZE];
        slotted::init(&mut page);
        let mut model: HashMap<slotted::SlotId, Vec<u8>> = HashMap::new();
        let mut live: Vec<slotted::SlotId> = Vec::new();

        for op in ops {
            match op {
                PageOp::Insert(rec) => {
                    if let Some(slot) = slotted::insert(&mut page, &rec) {
                        prop_assert!(!model.contains_key(&slot), "slot reuse of live slot");
                        model.insert(slot, rec);
                        live.push(slot);
                    } else {
                        // Page refused: the record genuinely must not fit.
                        prop_assert!(!slotted::fits(&page, rec.len()));
                    }
                }
                PageOp::Delete(i) => {
                    if live.is_empty() { continue; }
                    let slot = live.remove(i % live.len());
                    prop_assert!(slotted::delete(&mut page, slot));
                    model.remove(&slot);
                }
                PageOp::Update(i, rec) => {
                    if live.is_empty() { continue; }
                    let slot = live[i % live.len()];
                    match slotted::update(&mut page, slot, &rec) {
                        Ok(true) => { model.insert(slot, rec); }
                        Ok(false) => prop_assert!(false, "live slot reported missing"),
                        Err(_) => { /* legitimately didn't fit; must be unchanged */ }
                    }
                }
            }
            // Model equivalence after every op.
            for (slot, rec) in &model {
                prop_assert_eq!(slotted::get(&page, *slot), Some(rec.as_slice()));
            }
            prop_assert_eq!(slotted::iter(&page).count(), model.len());
        }
    }
}

/// Operations applied to a heap file in the model-based test.
#[derive(Debug, Clone)]
enum HeapOp {
    Insert(Vec<u8>),
    Delete(usize),
    Update(usize, Vec<u8>),
}

fn arb_heap_op() -> impl Strategy<Value = HeapOp> {
    prop_oneof![
        3 => prop::collection::vec(any::<u8>(), 0..600).prop_map(HeapOp::Insert),
        1 => (0..256usize).prop_map(HeapOp::Delete),
        1 => (0..256usize, prop::collection::vec(any::<u8>(), 0..600))
            .prop_map(|(i, r)| HeapOp::Update(i, r)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A heap file under a tiny buffer pool (forcing constant eviction)
    /// behaves like a map rid→bytes, and scans see exactly the live set.
    #[test]
    fn heap_file_matches_model(ops in prop::collection::vec(arb_heap_op(), 1..120)) {
        let pool = Arc::new(BufferPool::new(2)); // brutal eviction pressure
        let file = pool.register_file(Box::new(MemStorage::new()));
        let heap = HeapFile::create(pool, file).unwrap();
        let mut model: HashMap<wsq_storage::Rid, Vec<u8>> = HashMap::new();
        let mut live: Vec<wsq_storage::Rid> = Vec::new();

        for op in ops {
            match op {
                HeapOp::Insert(rec) => {
                    let rid = heap.insert(&rec).unwrap();
                    prop_assert!(!model.contains_key(&rid));
                    model.insert(rid, rec);
                    live.push(rid);
                }
                HeapOp::Delete(i) => {
                    if live.is_empty() { continue; }
                    let rid = live.remove(i % live.len());
                    heap.delete(rid).unwrap();
                    model.remove(&rid);
                }
                HeapOp::Update(i, rec) => {
                    if live.is_empty() { continue; }
                    let idx = i % live.len();
                    let rid = live[idx];
                    let new_rid = heap.update(rid, &rec).unwrap();
                    model.remove(&rid);
                    prop_assert!(!model.contains_key(&new_rid));
                    model.insert(new_rid, rec);
                    live[idx] = new_rid;
                }
            }
        }
        // Point lookups agree with the model.
        for (rid, rec) in &model {
            prop_assert_eq!(&heap.get(*rid).unwrap(), rec);
        }
        // The scan sees exactly the live records.
        let mut scanned: Vec<(wsq_storage::Rid, Vec<u8>)> =
            heap.scan().map(|r| r.unwrap()).collect();
        scanned.sort_by_key(|(rid, _)| *rid);
        let mut expect: Vec<(wsq_storage::Rid, Vec<u8>)> =
            model.into_iter().collect();
        expect.sort_by_key(|(rid, _)| *rid);
        prop_assert_eq!(scanned, expect);
        prop_assert_eq!(heap.len().unwrap() as usize, live.len());
    }
}
