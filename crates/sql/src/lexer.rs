//! Hand-written SQL lexer.

use std::fmt;
use wsq_common::{Result, WsqError};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are recognized by the parser,
    /// case-insensitively).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `;`
    Semi,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Comma => write!(f, ","),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Dot => write!(f, "."),
            Token::Semi => write!(f, ";"),
            Token::Star => write!(f, "*"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Eq => write!(f, "="),
            Token::NotEq => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::LtEq => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::GtEq => write!(f, ">="),
        }
    }
}

/// Tokenize SQL text. Comments (`-- …`) run to end of line.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if bytes.get(i + 1) == Some(&'-') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&'=') => {
                out.push(Token::NotEq);
                i += 2;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token::LtEq);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&'>') {
                    out.push(Token::NotEq);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token::GtEq);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                // String literal with '' escaping.
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        Some('\'') if bytes.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                        None => {
                            return Err(WsqError::Parse("unterminated string literal".to_string()))
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == '.'
                    && bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text: String = bytes[start..i].iter().collect();
                if is_float {
                    let v = text
                        .parse::<f64>()
                        .map_err(|e| WsqError::Parse(format!("bad float literal '{text}': {e}")))?;
                    out.push(Token::Float(v));
                } else {
                    let v = text.parse::<i64>().map_err(|e| {
                        WsqError::Parse(format!("bad integer literal '{text}': {e}"))
                    })?;
                    out.push(Token::Int(v));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                out.push(Token::Ident(bytes[start..i].iter().collect()));
            }
            other => {
                return Err(WsqError::Parse(format!(
                    "unexpected character '{other}' at offset {i}"
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_a_wsq_query() {
        let toks = lex("SELECT Name, Count FROM States, WebCount WHERE Name = T1").unwrap();
        assert_eq!(toks.len(), 12);
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert_eq!(toks[2], Token::Comma);
        assert_eq!(toks[10], Token::Eq);
    }

    #[test]
    fn numbers_ints_and_floats() {
        assert_eq!(
            lex("42 3.25 0.5").unwrap(),
            vec![Token::Int(42), Token::Float(3.25), Token::Float(0.5)]
        );
        // `1.` followed by non-digit is Int Dot (qualified-name friendly).
        assert_eq!(
            lex("1.x").unwrap(),
            vec![Token::Int(1), Token::Dot, Token::Ident("x".into())]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            lex("'four corners' 'it''s'").unwrap(),
            vec![Token::Str("four corners".into()), Token::Str("it's".into())]
        );
        assert!(lex("'unterminated").is_err());
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            lex("< <= > >= = <> !=").unwrap(),
            vec![
                Token::Lt,
                Token::LtEq,
                Token::Gt,
                Token::GtEq,
                Token::Eq,
                Token::NotEq,
                Token::NotEq
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("SELECT -- the select list\n x").unwrap();
        assert_eq!(
            toks,
            vec![Token::Ident("SELECT".into()), Token::Ident("x".into())]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("SELECT @x").is_err());
    }

    #[test]
    fn identifiers_with_underscores() {
        assert_eq!(
            lex("WebPages_AV _x a1").unwrap(),
            vec![
                Token::Ident("WebPages_AV".into()),
                Token::Ident("_x".into()),
                Token::Ident("a1".into())
            ]
        );
    }
}
