//! Recursive-descent parser for the SQL subset.

use crate::ast::*;
use crate::lexer::{lex, Token};
use wsq_common::{DataType, Result, WsqError};

/// Parse a string of one or more `;`-separated statements.
pub fn parse(input: &str) -> Result<Vec<Statement>> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    loop {
        while p.eat(&Token::Semi) {}
        if p.at_end() {
            break;
        }
        out.push(p.statement()?);
    }
    Ok(out)
}

/// Parse exactly one statement.
pub fn parse_one(input: &str) -> Result<Statement> {
    let mut stmts = parse(input)?;
    match stmts.len() {
        1 => Ok(stmts.remove(0)),
        n => Err(WsqError::Parse(format!("expected 1 statement, found {n}"))),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| WsqError::Parse("unexpected end of input".to_string()))?;
        self.pos += 1;
        Ok(t)
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        let got = self.next()?;
        if &got == t {
            Ok(())
        } else {
            Err(WsqError::Parse(format!("expected '{t}', found '{got}'")))
        }
    }

    /// Is the current token the given keyword (case-insensitive)?
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(WsqError::Parse(format!(
                "expected keyword '{kw}', found '{}'",
                self.peek().map(|t| t.to_string()).unwrap_or_default()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(WsqError::Parse(format!(
                "expected identifier, found '{other}'"
            ))),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.at_keyword("SELECT") {
            return Ok(Statement::Select(self.select()?));
        }
        if self.eat_keyword("CREATE") {
            if self.eat_keyword("TABLE") {
                return self.create_table();
            }
            if self.eat_keyword("VIEW") {
                let name = self.ident()?;
                self.expect_keyword("AS")?;
                let query = self.select()?;
                return Ok(Statement::CreateView { name, query });
            }
            self.expect_keyword("INDEX")?;
            let (table, column) = self.index_target()?;
            return Ok(Statement::CreateIndex { table, column });
        }
        if self.eat_keyword("DROP") {
            if self.eat_keyword("TABLE") {
                let name = self.ident()?;
                return Ok(Statement::DropTable { name });
            }
            if self.eat_keyword("VIEW") {
                let name = self.ident()?;
                return Ok(Statement::DropView { name });
            }
            self.expect_keyword("INDEX")?;
            let (table, column) = self.index_target()?;
            return Ok(Statement::DropIndex { table, column });
        }
        if self.eat_keyword("INSERT") {
            self.expect_keyword("INTO")?;
            return self.insert();
        }
        if self.eat_keyword("SHOW") {
            self.expect_keyword("TABLES")?;
            return Ok(Statement::ShowTables);
        }
        if self.eat_keyword("DESCRIBE") || self.eat_keyword("DESC") {
            let table = self.ident()?;
            return Ok(Statement::Describe { table });
        }
        if self.eat_keyword("DELETE") {
            self.expect_keyword("FROM")?;
            let table = self.ident()?;
            let predicate = if self.eat_keyword("WHERE") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Statement::Delete { table, predicate });
        }
        if self.eat_keyword("UPDATE") {
            let table = self.ident()?;
            self.expect_keyword("SET")?;
            let mut sets = Vec::new();
            loop {
                let col = self.ident()?;
                self.expect(&Token::Eq)?;
                let e = self.expr()?;
                sets.push((col, e));
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            let predicate = if self.eat_keyword("WHERE") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Statement::Update {
                table,
                sets,
                predicate,
            });
        }
        Err(WsqError::Parse(format!(
            "expected a statement, found '{}'",
            self.peek().map(|t| t.to_string()).unwrap_or_default()
        )))
    }

    /// `ON table (column)` — the target clause of CREATE/DROP INDEX.
    fn index_target(&mut self) -> Result<(String, String)> {
        self.expect_keyword("ON")?;
        let table = self.ident()?;
        self.expect(&Token::LParen)?;
        let column = self.ident()?;
        self.expect(&Token::RParen)?;
        Ok((table, column))
    }

    fn create_table(&mut self) -> Result<Statement> {
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let ty = self.ident()?;
            let dtype = match ty.to_ascii_uppercase().as_str() {
                "INT" | "INTEGER" => DataType::Int,
                "FLOAT" | "REAL" | "DOUBLE" => DataType::Float,
                "VARCHAR" | "CHAR" | "TEXT" | "STRING" => {
                    // Optional advisory length: VARCHAR(32).
                    if self.eat(&Token::LParen) {
                        match self.next()? {
                            Token::Int(_) => {}
                            other => {
                                return Err(WsqError::Parse(format!(
                                    "expected length, found '{other}'"
                                )))
                            }
                        }
                        self.expect(&Token::RParen)?;
                    }
                    DataType::Varchar
                }
                other => {
                    return Err(WsqError::Parse(format!("unknown type '{other}'")));
                }
            };
            columns.push(ColumnDef { name: col, dtype });
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn insert(&mut self) -> Result<Statement> {
        let table = self.ident()?;
        if self.at_keyword("SELECT") {
            let query = self.select()?;
            return Ok(Statement::InsertSelect { table, query });
        }
        self.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.literal()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            rows.push(row);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn literal(&mut self) -> Result<Literal> {
        match self.next()? {
            Token::Int(i) => Ok(Literal::Int(i)),
            Token::Float(f) => Ok(Literal::Float(f)),
            Token::Str(s) => Ok(Literal::Str(s)),
            Token::Minus => match self.next()? {
                Token::Int(i) => Ok(Literal::Int(-i)),
                Token::Float(f) => Ok(Literal::Float(-f)),
                other => Err(WsqError::Parse(format!(
                    "expected number after '-', found '{other}'"
                ))),
            },
            Token::Ident(s) if s.eq_ignore_ascii_case("NULL") => Ok(Literal::Null),
            other => Err(WsqError::Parse(format!(
                "expected literal, found '{other}'"
            ))),
        }
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");

        let mut items = Vec::new();
        loop {
            if self.eat(&Token::Star) {
                items.push(SelectItem::Star);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_keyword("AS") {
                    Some(self.ident()?)
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }

        self.expect_keyword("FROM")?;
        let mut from = Vec::new();
        loop {
            let table = self.ident()?;
            // Optional alias: a bare identifier that is not a clause keyword.
            let alias = match self.peek() {
                Some(Token::Ident(s)) if !is_clause_keyword(s) => Some(self.ident()?),
                _ => None,
            };
            from.push(TableRef { table, alias });
            if !self.eat(&Token::Comma) {
                break;
            }
        }

        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.column_ref()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }

        let having = if self.eat_keyword("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };

        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_keyword("DESC") {
                    true
                } else {
                    self.eat_keyword("ASC");
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }

        let limit = if self.eat_keyword("LIMIT") {
            match self.next()? {
                Token::Int(n) if n >= 0 => Some(n as u64),
                other => {
                    return Err(WsqError::Parse(format!(
                        "expected row count after LIMIT, found '{other}'"
                    )))
                }
            }
        } else {
            None
        };

        Ok(SelectStmt {
            distinct,
            items,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn column_ref(&mut self) -> Result<ColumnRef> {
        let first = self.ident()?;
        if self.eat(&Token::Dot) {
            let name = self.ident()?;
            Ok(ColumnRef {
                qualifier: Some(first),
                name,
            })
        } else {
            Ok(ColumnRef {
                qualifier: None,
                name: first,
            })
        }
    }

    // Expression grammar, lowest to highest precedence:
    //   or_expr    := and_expr (OR and_expr)*
    //   and_expr   := not_expr (AND not_expr)*
    //   not_expr   := NOT not_expr | cmp_expr
    //   cmp_expr   := add_expr ((=|<>|<|<=|>|>=) add_expr)?
    //   add_expr   := mul_expr ((+|-) mul_expr)*
    //   mul_expr   := unary ((*|/) unary)*
    //   unary      := - unary | primary
    //   primary    := literal | agg | column | ( or_expr )
    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_keyword("OR") {
            let rhs = self.and_expr()?;
            lhs = Expr::binary(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat_keyword("AND") {
            let rhs = self.not_expr()?;
            lhs = Expr::binary(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_keyword("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(inner),
            });
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let lhs = self.add_expr()?;
        // Postfix predicates: [NOT] LIKE / IN / BETWEEN.
        let negated = matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case("NOT"))
            && matches!(
                self.tokens.get(self.pos + 1),
                Some(Token::Ident(s)) if ["LIKE", "IN", "BETWEEN"]
                    .iter()
                    .any(|k| s.eq_ignore_ascii_case(k))
            );
        if negated {
            self.pos += 1; // consume NOT
        }
        if self.eat_keyword("LIKE") {
            let pattern = self.add_expr()?;
            return Ok(Expr::Like {
                expr: Box::new(lhs),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if self.eat_keyword("IN") {
            self.expect(&Token::LParen)?;
            if self.at_keyword("SELECT") {
                let query = self.select()?;
                self.expect(&Token::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(lhs),
                    query: Box::new(query),
                    negated,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(lhs),
                list,
                negated,
            });
        }
        if self.eat_keyword("BETWEEN") {
            let low = self.add_expr()?;
            self.expect_keyword("AND")?;
            let high = self.add_expr()?;
            return Ok(Expr::Between {
                expr: Box::new(lhs),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if negated {
            return Err(WsqError::Parse(
                "expected LIKE, IN or BETWEEN after NOT".to_string(),
            ));
        }
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::NotEq) => Some(BinOp::NotEq),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::LtEq) => Some(BinOp::LtEq),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::GtEq) => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.add_expr()?;
            return Ok(Expr::binary(op, lhs, rhs));
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat(&Token::Minus) {
            let inner = self.unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(inner),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(Token::Int(i)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Int(i)))
            }
            Some(Token::Float(f)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Float(f)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Str(s)))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                if self.at_keyword("SELECT") {
                    let q = self.select()?;
                    self.expect(&Token::RParen)?;
                    return Ok(Expr::Subquery(Box::new(q)));
                }
                let e = self.or_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                self.pos += 1;
                if name.eq_ignore_ascii_case("NULL") {
                    return Ok(Expr::Literal(Literal::Null));
                }
                // Aggregate call?
                if let Some(func) = agg_func(&name) {
                    if self.eat(&Token::LParen) {
                        if self.eat(&Token::Star) {
                            self.expect(&Token::RParen)?;
                            if func != AggFunc::Count {
                                return Err(WsqError::Parse(format!(
                                    "{func}(*) is not valid; only COUNT(*)"
                                )));
                            }
                            return Ok(Expr::Agg { func, arg: None });
                        }
                        let arg = self.expr()?;
                        self.expect(&Token::RParen)?;
                        return Ok(Expr::Agg {
                            func,
                            arg: Some(Box::new(arg)),
                        });
                    }
                    // Not a call: fall through to a column named e.g. `Count`
                    // (the WebCount virtual table has one!).
                }
                if self.eat(&Token::Dot) {
                    let col = self.ident()?;
                    Ok(Expr::Column(ColumnRef {
                        qualifier: Some(name),
                        name: col,
                    }))
                } else {
                    Ok(Expr::Column(ColumnRef {
                        qualifier: None,
                        name,
                    }))
                }
            }
            other => Err(WsqError::Parse(format!(
                "expected expression, found '{}'",
                other.map(|t| t.to_string()).unwrap_or_default()
            ))),
        }
    }
}

fn agg_func(name: &str) -> Option<AggFunc> {
    match name.to_ascii_uppercase().as_str() {
        "COUNT" => Some(AggFunc::Count),
        "SUM" => Some(AggFunc::Sum),
        "MIN" => Some(AggFunc::Min),
        "MAX" => Some(AggFunc::Max),
        "AVG" => Some(AggFunc::Avg),
        _ => None,
    }
}

fn is_clause_keyword(s: &str) -> bool {
    [
        "WHERE", "GROUP", "ORDER", "LIMIT", "ON", "AND", "OR", "AS", "FROM", "SELECT", "HAVING",
        "UNION",
    ]
    .iter()
    .any(|k| s.eq_ignore_ascii_case(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> SelectStmt {
        match parse_one(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn paper_query_1() {
        let s = sel("Select Name, Count From States, WebCount \
             Where Name = T1 Order By Count Desc");
        assert_eq!(s.items.len(), 2);
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.from[1].table, "WebCount");
        assert!(s.where_clause.is_some());
        assert_eq!(s.order_by.len(), 1);
        assert!(s.order_by[0].desc);
        assert!(!s.distinct);
    }

    #[test]
    fn paper_query_2_arithmetic_alias() {
        let s = sel("Select Name, Count/Population As C From States, WebCount \
             Where Name = T1 Order By C Desc");
        match &s.items[1] {
            SelectItem::Expr { expr, alias } => {
                assert_eq!(alias.as_deref(), Some("C"));
                assert_eq!(expr.to_string(), "(Count / Population)");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn paper_query_4_aliases_and_qualified_refs() {
        let s = sel("Select Capital, C.Count, Name, S.Count \
             From States, WebCount C, WebCount S \
             Where Capital = C.T1 and Name = S.T1 and C.Count > S.Count");
        assert_eq!(s.from[1].binding_name(), "C");
        assert_eq!(s.from[2].binding_name(), "S");
        let conjuncts = s.where_clause.unwrap().split_conjuncts();
        assert_eq!(conjuncts.len(), 3);
        assert_eq!(conjuncts[2].to_string(), "(C.Count > S.Count)");
    }

    #[test]
    fn paper_query_6_two_engines() {
        let s = sel(
            "Select Name, AV.URL From States, WebPages_AV AV, WebPages_Google G \
             Where Name = AV.T1 and Name = G.T1 and AV.Rank <= 5 and \
             G.Rank <= 5 and AV.URL = G.URL",
        );
        assert_eq!(s.from.len(), 3);
        assert_eq!(s.from[1].table, "WebPages_AV");
        assert_eq!(s.from[1].alias.as_deref(), Some("AV"));
        assert_eq!(s.where_clause.unwrap().split_conjuncts().len(), 5);
    }

    #[test]
    fn string_literals_and_constants() {
        let s = sel("Select Name, Count From States, WebCount \
             Where Name = T1 and T2 = 'four corners' Order By Count Desc");
        let cs = s.where_clause.unwrap().split_conjuncts();
        assert_eq!(cs[1].to_string(), "(T2 = 'four corners')");
    }

    #[test]
    fn select_star_and_distinct_and_limit() {
        let s = sel("Select Distinct * From Sigs Limit 10");
        assert!(s.distinct);
        assert_eq!(s.items, vec![SelectItem::Star]);
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn group_by_and_aggregates() {
        let s = sel("Select Capital, COUNT(*), SUM(Population) From States \
             Group By Capital Order By 1");
        assert_eq!(s.group_by.len(), 1);
        match &s.items[1] {
            SelectItem::Expr { expr, .. } => assert_eq!(expr.to_string(), "COUNT(*)"),
            _ => panic!(),
        }
        match &s.items[2] {
            SelectItem::Expr { expr, .. } => assert_eq!(expr.to_string(), "SUM(Population)"),
            _ => panic!(),
        }
    }

    #[test]
    fn count_is_a_column_when_not_called() {
        // `Count` is both an aggregate keyword and the WebCount column name;
        // without parentheses it must parse as a column.
        let s = sel("Select Count From WebCount Where Count > 5");
        match &s.items[0] {
            SelectItem::Expr { expr, .. } => {
                assert_eq!(expr, &Expr::column("Count"));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn operator_precedence() {
        let s = sel("Select a + b * c - d / e From T");
        match &s.items[0] {
            SelectItem::Expr { expr, .. } => {
                assert_eq!(expr.to_string(), "((a + (b * c)) - (d / e))");
            }
            _ => panic!(),
        }
        let s = sel("Select * From T Where a = 1 or b = 2 and c = 3");
        assert_eq!(
            s.where_clause.unwrap().to_string(),
            "((a = 1) OR ((b = 2) AND (c = 3)))"
        );
    }

    #[test]
    fn parens_and_unary() {
        let s = sel("Select -(a + 2) From T Where not a > 1");
        match &s.items[0] {
            SelectItem::Expr { expr, .. } => assert_eq!(expr.to_string(), "(-(a + 2))"),
            _ => panic!(),
        }
        assert_eq!(s.where_clause.unwrap().to_string(), "(NOT (a > 1))");
    }

    #[test]
    fn create_insert_drop() {
        let stmts = parse(
            "CREATE TABLE States (Name VARCHAR(32), Population INT, Capital VARCHAR(32));\
             INSERT INTO States VALUES ('Colorado', 3971000, 'Denver'), ('Utah', 2100000, 'Salt Lake City');\
             DROP TABLE States;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
        match &stmts[0] {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "States");
                assert_eq!(columns.len(), 3);
                assert_eq!(columns[1].dtype, DataType::Int);
            }
            _ => panic!(),
        }
        match &stmts[1] {
            Statement::Insert { rows, .. } => {
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0][0], Literal::Str("Colorado".into()));
                assert_eq!(rows[1][1], Literal::Int(2100000));
            }
            _ => panic!(),
        }
        assert!(matches!(&stmts[2], Statement::DropTable { name } if name == "States"));
    }

    #[test]
    fn negative_literals_in_insert() {
        let stmt = parse_one("INSERT INTO T VALUES (-5, -2.5, NULL)").unwrap();
        match stmt {
            Statement::Insert { rows, .. } => {
                assert_eq!(
                    rows[0],
                    vec![Literal::Int(-5), Literal::Float(-2.5), Literal::Null]
                );
            }
            _ => panic!(),
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("SELECT").is_err());
        assert!(parse("SELECT x FROM").is_err());
        assert!(parse("SELECT x FROM T WHERE").is_err());
        assert!(parse("CREATE TABLE T (x BLOB)").is_err());
        assert!(parse("BOGUS STATEMENT").is_err());
        assert!(parse("SELECT SUM(*) FROM T").is_err());
        assert!(parse_one("SELECT 1 FROM T; SELECT 2 FROM T").is_err());
    }

    #[test]
    fn like_in_between() {
        let s = sel("SELECT * FROM T WHERE a LIKE 'New%' AND b NOT LIKE '%x_'");
        let cs = s.where_clause.unwrap().split_conjuncts();
        assert_eq!(cs[0].to_string(), "(a LIKE 'New%')");
        assert_eq!(cs[1].to_string(), "(b NOT LIKE '%x_')");

        let s = sel("SELECT * FROM T WHERE a IN (1, 2, 3) AND b NOT IN ('x')");
        let cs = s.where_clause.unwrap().split_conjuncts();
        assert_eq!(cs[0].to_string(), "(a IN (1, 2, 3))");
        assert_eq!(cs[1].to_string(), "(b NOT IN ('x'))");

        let s = sel("SELECT * FROM T WHERE a BETWEEN 1 AND 10 AND b = 2");
        let cs = s.where_clause.unwrap().split_conjuncts();
        assert_eq!(cs[0].to_string(), "(a BETWEEN 1 AND 10)");
        assert_eq!(cs[1].to_string(), "(b = 2)");

        let s = sel("SELECT * FROM T WHERE a NOT BETWEEN 1 AND 10");
        assert_eq!(
            s.where_clause.unwrap().to_string(),
            "(a NOT BETWEEN 1 AND 10)"
        );
        // `NOT a LIKE 'x'` still parses (prefix NOT over the LIKE).
        let s = sel("SELECT * FROM T WHERE NOT a LIKE 'x'");
        assert_eq!(s.where_clause.unwrap().to_string(), "(NOT (a LIKE 'x'))");
        assert!(parse("SELECT * FROM T WHERE a NOT 5").is_err());
    }

    #[test]
    fn having_clause() {
        let s = sel("SELECT City, COUNT(*) FROM People GROUP BY City \
             HAVING COUNT(*) > 2 ORDER BY City");
        assert_eq!(s.having.unwrap().to_string(), "(COUNT(*) > 2)");
        assert_eq!(s.group_by.len(), 1);
        assert_eq!(s.order_by.len(), 1);
    }

    #[test]
    fn index_statements() {
        assert_eq!(
            parse_one("CREATE INDEX ON States (Name)").unwrap(),
            Statement::CreateIndex {
                table: "States".into(),
                column: "Name".into()
            }
        );
        assert_eq!(
            parse_one("DROP INDEX ON States (Name)").unwrap(),
            Statement::DropIndex {
                table: "States".into(),
                column: "Name".into()
            }
        );
        assert!(parse("CREATE INDEX States (Name)").is_err());
        assert!(parse("CREATE INDEX ON States ()").is_err());
    }

    #[test]
    fn delete_statements() {
        let s = parse_one("DELETE FROM States WHERE Population < 1000000").unwrap();
        match s {
            Statement::Delete { table, predicate } => {
                assert_eq!(table, "States");
                assert_eq!(predicate.unwrap().to_string(), "(Population < 1000000)");
            }
            _ => panic!(),
        }
        let s = parse_one("DELETE FROM States").unwrap();
        assert!(matches!(
            s,
            Statement::Delete {
                predicate: None,
                ..
            }
        ));
    }

    #[test]
    fn update_statements() {
        let s = parse_one(
            "UPDATE States SET Population = Population + 1000, Capital = 'X' \
             WHERE Name = 'Utah'",
        )
        .unwrap();
        match s {
            Statement::Update {
                table,
                sets,
                predicate,
            } => {
                assert_eq!(table, "States");
                assert_eq!(sets.len(), 2);
                assert_eq!(sets[0].0, "Population");
                assert_eq!(sets[0].1.to_string(), "(Population + 1000)");
                assert_eq!(sets[1].1.to_string(), "'X'");
                assert!(predicate.is_some());
            }
            _ => panic!(),
        }
        assert!(parse("UPDATE States Population = 1").is_err());
    }

    #[test]
    fn multiple_statements_with_stray_semicolons() {
        let stmts = parse(";;SELECT a FROM T;; SELECT b FROM U;").unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn from_alias_not_confused_with_keywords() {
        let s = sel("Select * From Sigs s Where s.Name = 'SIGMOD'");
        assert_eq!(s.from[0].alias.as_deref(), Some("s"));
        let s = sel("Select * From Sigs Where Name = 'SIGMOD'");
        assert_eq!(s.from[0].alias, None);
    }
}
