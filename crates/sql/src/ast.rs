//! Abstract syntax tree for the SQL subset.

use std::fmt;
use wsq_common::DataType;

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col type, …)`
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<ColumnDef>,
    },
    /// `DROP TABLE name`
    DropTable {
        /// Table name.
        name: String,
    },
    /// `INSERT INTO name VALUES (…), (…)`
    Insert {
        /// Target table.
        table: String,
        /// Rows of literal values.
        rows: Vec<Vec<Literal>>,
    },
    /// `CREATE INDEX ON table (column)` — Redbase-style single-column
    /// index, named implicitly by its table and column.
    CreateIndex {
        /// Indexed table.
        table: String,
        /// Indexed column.
        column: String,
    },
    /// `DROP INDEX ON table (column)`
    DropIndex {
        /// Indexed table.
        table: String,
        /// Indexed column.
        column: String,
    },
    /// `DELETE FROM table [WHERE …]`
    Delete {
        /// Target table.
        table: String,
        /// Row filter (`None` deletes everything).
        predicate: Option<Expr>,
    },
    /// `UPDATE table SET col = expr, … [WHERE …]`
    Update {
        /// Target table.
        table: String,
        /// Assignments, in order.
        sets: Vec<(String, Expr)>,
        /// Row filter (`None` updates everything).
        predicate: Option<Expr>,
    },
    /// `INSERT INTO table SELECT …` — materialize a query's result.
    InsertSelect {
        /// Target table.
        table: String,
        /// Source query.
        query: SelectStmt,
    },
    /// `CREATE VIEW name AS SELECT …`
    CreateView {
        /// View name.
        name: String,
        /// Defining query.
        query: SelectStmt,
    },
    /// `DROP VIEW name`
    DropView {
        /// View name.
        name: String,
    },
    /// `SHOW TABLES`
    ShowTables,
    /// `DESCRIBE table`
    Describe {
        /// Table to describe.
        table: String,
    },
    /// A `SELECT` query.
    Select(SelectStmt),
}

/// One column in a `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
}

/// A table reference in a `FROM` clause, with optional alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Table (or virtual table) name.
    pub table: String,
    /// Optional alias; when absent the table name is the alias.
    pub alias: Option<String>,
}

impl TableRef {
    /// The name other clauses refer to this table by.
    pub fn binding_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// A column reference `[qualifier.]name`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Optional table qualifier.
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

/// A literal value.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal.
    Str(String),
    /// `NULL`.
    Null,
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Float(x) => write!(f, "{x}"),
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Null => write!(f, "NULL"),
        }
    }
}

/// Binary operators, in increasing precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Logical OR.
    Or,
    /// Logical AND.
    And,
    /// `=`
    Eq,
    /// `<>` / `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl BinOp {
    /// SQL spelling of the operator.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinOp::Or => "OR",
            BinOp::And => "AND",
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        }
    }

    /// Is this a comparison operator?
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical NOT.
    Not,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` or `COUNT(expr)`.
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// `AVG(expr)`.
    Avg,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        };
        write!(f, "{s}")
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Column(ColumnRef),
    /// Literal.
    Literal(Literal),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Aggregate call; `arg == None` means `COUNT(*)`.
    Agg {
        /// Function.
        func: AggFunc,
        /// Argument (`None` only for `COUNT(*)`).
        arg: Option<Box<Expr>>,
    },
    /// `expr [NOT] LIKE pattern` (`%` = any run, `_` = any one char).
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern expression (usually a string literal).
        pattern: Box<Expr>,
        /// `NOT LIKE`?
        negated: bool,
    },
    /// `expr [NOT] IN (e1, e2, …)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// `NOT IN`?
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high` (inclusive).
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound.
        low: Box<Expr>,
        /// Upper bound.
        high: Box<Expr>,
        /// `NOT BETWEEN`?
        negated: bool,
    },
    /// A scalar subquery `(SELECT …)` — must be uncorrelated and produce
    /// exactly one row and column; evaluated before the outer query plans.
    Subquery(Box<SelectStmt>),
    /// `expr [NOT] IN (SELECT …)` — uncorrelated, single output column.
    InSubquery {
        /// Tested expression.
        expr: Box<Expr>,
        /// The subquery supplying candidates.
        query: Box<SelectStmt>,
        /// `NOT IN`?
        negated: bool,
    },
}

impl Expr {
    /// Build `lhs op rhs`.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Bare (unqualified) column reference.
    pub fn column(name: &str) -> Expr {
        Expr::Column(ColumnRef {
            qualifier: None,
            name: name.to_string(),
        })
    }

    /// Qualified column reference.
    pub fn qualified(qualifier: &str, name: &str) -> Expr {
        Expr::Column(ColumnRef {
            qualifier: Some(qualifier.to_string()),
            name: name.to_string(),
        })
    }

    /// Does this expression (transitively) contain an aggregate call?
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Agg { .. } => true,
            Expr::Binary { lhs, rhs, .. } => lhs.contains_aggregate() || rhs.contains_aggregate(),
            Expr::Unary { expr, .. } => expr.contains_aggregate(),
            Expr::Column(_) | Expr::Literal(_) => false,
            Expr::Like { expr, pattern, .. } => {
                expr.contains_aggregate() || pattern.contains_aggregate()
            }
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            // Subqueries have their own aggregation scope.
            Expr::Subquery(_) => false,
            Expr::InSubquery { expr, .. } => expr.contains_aggregate(),
        }
    }

    /// Collect every column referenced by this expression.
    pub fn columns(&self) -> Vec<&ColumnRef> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a ColumnRef>) {
        match self {
            Expr::Column(c) => out.push(c),
            Expr::Literal(_) => {}
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_columns(out);
                rhs.collect_columns(out);
            }
            Expr::Unary { expr, .. } => expr.collect_columns(out),
            Expr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    a.collect_columns(out);
                }
            }
            Expr::Like { expr, pattern, .. } => {
                expr.collect_columns(out);
                pattern.collect_columns(out);
            }
            Expr::InList { expr, list, .. } => {
                expr.collect_columns(out);
                for e in list {
                    e.collect_columns(out);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.collect_columns(out);
                low.collect_columns(out);
                high.collect_columns(out);
            }
            // Subquery columns belong to the inner scope (uncorrelated).
            Expr::Subquery(_) => {}
            Expr::InSubquery { expr, .. } => expr.collect_columns(out),
        }
    }

    /// Split a conjunction into its conjuncts (`a AND b AND c` → 3 exprs).
    pub fn split_conjuncts(self) -> Vec<Expr> {
        match self {
            Expr::Binary {
                op: BinOp::And,
                lhs,
                rhs,
            } => {
                let mut out = lhs.split_conjuncts();
                out.extend(rhs.split_conjuncts());
                out
            }
            other => vec![other],
        }
    }

    /// Re-join conjuncts into one expression (`None` if the slice is empty).
    pub fn join_conjuncts(mut exprs: Vec<Expr>) -> Option<Expr> {
        let first = if exprs.is_empty() {
            return None;
        } else {
            exprs.remove(0)
        };
        Some(
            exprs
                .into_iter()
                .fold(first, |acc, e| Expr::binary(BinOp::And, acc, e)),
        )
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(l) => write!(f, "{l}"),
            Expr::Binary { op, lhs, rhs } => write!(f, "({lhs} {} {rhs})", op.symbol()),
            Expr::Unary {
                op: UnOp::Neg,
                expr,
            } => write!(f, "(-{expr})"),
            Expr::Unary {
                op: UnOp::Not,
                expr,
            } => write!(f, "(NOT {expr})"),
            Expr::Agg { func, arg: None } => write!(f, "{func}(*)"),
            Expr::Agg { func, arg: Some(a) } => write!(f, "{func}({a})"),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "({expr} {}LIKE {pattern})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let items: Vec<String> = list.iter().map(|e| e.to_string()).collect();
                write!(
                    f,
                    "({expr} {}IN ({}))",
                    if *negated { "NOT " } else { "" },
                    items.join(", ")
                )
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "({expr} {}BETWEEN {low} AND {high})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Subquery(q) => write!(f, "({q})"),
            Expr::InSubquery {
                expr,
                query,
                negated,
            } => write!(
                f,
                "({expr} {}IN ({query}))",
                if *negated { "NOT " } else { "" }
            ),
        }
    }
}

/// One item in a `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// An expression with an optional alias.
    Expr {
        /// The expression.
        expr: Expr,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Sort expression.
    pub expr: Expr,
    /// Descending?
    pub desc: bool,
}

/// A `SELECT` statement.
///
/// `Display` renders it back to parseable SQL (used to persist view
/// definitions); `parse(stmt.to_string())` round-trips.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// `FROM` tables, in join order (Redbase joins in clause order).
    pub from: Vec<TableRef>,
    /// `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` columns.
    pub group_by: Vec<ColumnRef>,
    /// `HAVING` predicate (may reference aggregates).
    pub having: Option<Expr>,
    /// `ORDER BY` keys.
    pub order_by: Vec<OrderItem>,
    /// `LIMIT` row count.
    pub limit: Option<u64>,
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match item {
                SelectItem::Star => write!(f, "*")?,
                SelectItem::Expr { expr, alias } => {
                    write!(f, "{expr}")?;
                    if let Some(a) = alias {
                        write!(f, " AS {a}")?;
                    }
                }
            }
        }
        write!(f, " FROM ")?;
        for (i, t) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", t.table)?;
            if let Some(a) = &t.alias {
                write!(f, " {a}")?;
            }
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", o.expr)?;
                if o.desc {
                    write!(f, " DESC")?;
                }
            }
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunct_splitting_roundtrips() {
        let e = Expr::binary(
            BinOp::And,
            Expr::binary(
                BinOp::And,
                Expr::binary(BinOp::Eq, Expr::column("a"), Expr::column("b")),
                Expr::binary(BinOp::Lt, Expr::column("c"), Expr::Literal(Literal::Int(5))),
            ),
            Expr::binary(BinOp::Gt, Expr::column("d"), Expr::column("e")),
        );
        let parts = e.clone().split_conjuncts();
        assert_eq!(parts.len(), 3);
        let joined = Expr::join_conjuncts(parts).unwrap();
        assert_eq!(joined, e);
        assert_eq!(Expr::join_conjuncts(vec![]), None);
    }

    #[test]
    fn or_is_not_split() {
        let e = Expr::binary(BinOp::Or, Expr::column("a"), Expr::column("b"));
        assert_eq!(e.clone().split_conjuncts(), vec![e]);
    }

    #[test]
    fn column_collection() {
        let e = Expr::binary(
            BinOp::Div,
            Expr::qualified("WebCount", "Count"),
            Expr::column("Population"),
        );
        let cols = e.columns();
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0].to_string(), "WebCount.Count");
        assert_eq!(cols[1].to_string(), "Population");
    }

    #[test]
    fn aggregate_detection() {
        let agg = Expr::Agg {
            func: AggFunc::Count,
            arg: None,
        };
        assert!(agg.contains_aggregate());
        let nested = Expr::binary(BinOp::Add, agg, Expr::Literal(Literal::Int(1)));
        assert!(nested.contains_aggregate());
        assert!(!Expr::column("x").contains_aggregate());
    }

    #[test]
    fn display_forms() {
        let e = Expr::binary(
            BinOp::Eq,
            Expr::column("Name"),
            Expr::Literal(Literal::Str("it's".into())),
        );
        assert_eq!(e.to_string(), "(Name = 'it''s')");
        let agg = Expr::Agg {
            func: AggFunc::Sum,
            arg: Some(Box::new(Expr::column("x"))),
        };
        assert_eq!(agg.to_string(), "SUM(x)");
    }

    #[test]
    fn table_ref_binding_name() {
        let t = TableRef {
            table: "WebPages_AV".into(),
            alias: Some("AV".into()),
        };
        assert_eq!(t.binding_name(), "AV");
        let t = TableRef {
            table: "States".into(),
            alias: None,
        };
        assert_eq!(t.binding_name(), "States");
    }
}
