//! SQL front end for WSQ/DSQ: lexer, recursive-descent parser, and AST.
//!
//! The dialect is the Redbase-style subset the paper's prototype supports
//! (select-project-join with manual join ordering via `FROM`-clause order),
//! extended with the constructs the paper's plan-transformation rules need
//! to be exercised against: `DISTINCT`, `GROUP BY` + aggregates, `ORDER
//! BY`, and `LIMIT`.
//!
//! ```
//! use wsq_sql::parse;
//!
//! let stmts = parse(
//!     "SELECT Name, Count FROM States, WebCount \
//!      WHERE Name = T1 ORDER BY Count DESC",
//! ).unwrap();
//! assert_eq!(stmts.len(), 1);
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{
    AggFunc, BinOp, ColumnDef, ColumnRef, Expr, Literal, OrderItem, SelectItem, SelectStmt,
    Statement, TableRef, UnOp,
};
pub use parser::{parse, parse_one};
