//! Parser robustness properties: no input panics the parser, and
//! expression pretty-printing round-trips through re-parsing.

use proptest::prelude::*;
use wsq_sql::ast::{BinOp, Expr, Literal, Statement, UnOp};
use wsq_sql::{parse, parse_one};

fn arb_literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        // Non-negative: `-1` prints as `-1` but re-parses as `Neg(1)`,
        // which is semantically equal yet structurally different.
        (0..i64::MAX).prop_map(Literal::Int),
        // Finite positive floats with exact decimal display round-trip.
        (0i32..1000, 1u32..100).prop_map(|(a, b)| Literal::Float(a as f64 + 1.0 / b as f64)),
        "[a-z ]{0,12}".prop_map(Literal::Str),
        Just(Literal::Null),
    ]
}

fn arb_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        arb_literal().prop_map(Expr::Literal),
        "[a-z][a-z0-9_]{0,6}".prop_map(|n| Expr::column(&n)),
        ("[a-z][a-z0-9_]{0,4}", "[a-z][a-z0-9_]{0,4}").prop_map(|(q, n)| Expr::qualified(&q, &n)),
    ]
    .boxed();
    if depth == 0 {
        return leaf;
    }
    let inner = arb_expr(depth - 1);
    prop_oneof![
        3 => leaf,
        3 => (
            prop_oneof![
                Just(BinOp::Add), Just(BinOp::Sub), Just(BinOp::Mul), Just(BinOp::Div),
                Just(BinOp::Eq), Just(BinOp::NotEq), Just(BinOp::Lt), Just(BinOp::LtEq),
                Just(BinOp::Gt), Just(BinOp::GtEq), Just(BinOp::And), Just(BinOp::Or),
            ],
            inner.clone(),
            inner.clone()
        )
            .prop_map(|(op, l, r)| Expr::binary(op, l, r)),
        1 => inner.clone().prop_map(|e| Expr::Unary {
            op: UnOp::Neg,
            expr: Box::new(e)
        }),
        1 => inner.clone().prop_map(|e| Expr::Unary {
            op: UnOp::Not,
            expr: Box::new(e)
        }),
        1 => (inner.clone(), "[a-z%_]{0,6}").prop_map(|(e, p)| Expr::Like {
            expr: Box::new(e),
            pattern: Box::new(Expr::Literal(Literal::Str(p))),
            negated: false,
        }),
        1 => (inner.clone(), prop::collection::vec(arb_literal(), 1..4), any::<bool>())
            .prop_map(|(e, lits, negated)| Expr::InList {
                expr: Box::new(e),
                list: lits.into_iter().map(Expr::Literal).collect(),
                negated,
            }),
        1 => (inner.clone(), arb_literal(), arb_literal(), any::<bool>())
            .prop_map(|(e, lo, hi, negated)| Expr::Between {
                expr: Box::new(e),
                low: Box::new(Expr::Literal(lo)),
                high: Box::new(Expr::Literal(hi)),
                negated,
            }),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Pretty-printed expressions re-parse to the same AST. (The printer
    /// fully parenthesizes, so precedence can't distort the round trip.)
    #[test]
    fn expression_display_reparses(expr in arb_expr(3)) {
        let sql = format!("SELECT {expr} FROM t");
        let stmt = parse_one(&sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        match stmt {
            Statement::Select(s) => match &s.items[0] {
                wsq_sql::SelectItem::Expr { expr: got, .. } => {
                    prop_assert_eq!(got.to_string(), expr.to_string());
                }
                other => prop_assert!(false, "unexpected item {:?}", other),
            },
            other => prop_assert!(false, "unexpected stmt {:?}", other),
        }
    }

    /// The parser never panics, whatever the input.
    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = parse(&input);
    }

    /// Nor on inputs built from SQL-ish fragments (more likely to reach
    /// deep parser states than raw noise).
    #[test]
    fn parser_never_panics_on_sqlish(
        parts in prop::collection::vec(
            prop_oneof![
                Just("SELECT"), Just("FROM"), Just("WHERE"), Just("GROUP BY"),
                Just("ORDER BY"), Just("HAVING"), Just("LIMIT"), Just("INSERT INTO"),
                Just("VALUES"), Just("CREATE TABLE"), Just("DROP INDEX"), Just("UPDATE"),
                Just("SET"), Just("DELETE"), Just("NOT"), Just("LIKE"), Just("IN"),
                Just("BETWEEN"), Just("AND"), Just("OR"), Just("("), Just(")"),
                Just(","), Just("*"), Just("="), Just("<="), Just("'text'"),
                Just("42"), Just("3.5"), Just("name"), Just("T.col"), Just(";"),
            ],
            0..25,
        )
    ) {
        let input = parts.join(" ");
        let _ = parse(&input);
    }
}
