//! Criterion micro-benchmarks: the fixed costs underneath the Table 1
//! experiments (corpus generation, index search, pump round-trips, plan
//! transformation, zero-latency query execution).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use wsq_bench::{bench_wsq, constant_pool, Template};
use wsq_core::{ExecutionMode, QueryOptions};
use wsq_pump::{PumpConfig, ReqPump, RequestKind, SearchRequest};
use wsq_websim::{Corpus, CorpusConfig, EngineKind, LatencyModel, SimWeb};

fn bench_corpus_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("corpus");
    g.sample_size(10);
    g.bench_function("generate_small", |b| {
        b.iter(|| Corpus::generate(&CorpusConfig::small()))
    });
    g.finish();
}

fn bench_engine_search(c: &mut Criterion) {
    let web = SimWeb::build(CorpusConfig::default());
    let av = web.engine(EngineKind::AltaVista);
    let mut g = c.benchmark_group("engine");
    g.bench_function("count/single_term", |b| b.iter(|| av.count("California")));
    g.bench_function("count/near_phrase", |b| {
        b.iter(|| av.count("Colorado near \"four corners\""))
    });
    g.bench_function("pages/top20", |b| b.iter(|| av.search("Texas", 20)));
    g.finish();
}

fn bench_pump_roundtrip(c: &mut Criterion) {
    let web = SimWeb::build(CorpusConfig::small());
    let av = web.engine(EngineKind::AltaVista);
    let pump = ReqPump::new(PumpConfig::default());
    pump.register_service("AV", av);
    let mut i = 0u64;
    c.bench_function("pump/register_wait_release", |b| {
        b.iter(|| {
            i += 1;
            let call = pump
                .register(SearchRequest {
                    engine: "AV".into(),
                    // Distinct expressions defeat coalescing so every
                    // iteration exercises the full path.
                    expr: format!("texas {i}"),
                    kind: RequestKind::Count,
                })
                .unwrap();
            let r = pump.wait(call).unwrap();
            pump.release(call);
            r
        })
    });
}

fn bench_plan_pipeline(c: &mut Criterion) {
    let wsq = bench_wsq(LatencyModel::Zero, CorpusConfig::small());
    let pool = constant_pool();
    let sql = Template::Three.instantiate(&pool, 0);
    c.bench_function("plan/parse_plan_asyncify_t3", |b| {
        b.iter(|| {
            wsq.explain(&sql).unwrap();
        })
    });
}

fn bench_query_execution(c: &mut Criterion) {
    // Zero latency isolates engine overhead: this measures what
    // asynchronous iteration *costs* when there is nothing to overlap.
    let wsq = Arc::new(std::sync::Mutex::new(bench_wsq(
        LatencyModel::Zero,
        CorpusConfig::small(),
    )));
    let pool = constant_pool();
    let mut g = c.benchmark_group("query_zero_latency");
    g.sample_size(20);
    for template in Template::all() {
        let sql = template.instantiate(&pool, 0);
        for (label, mode) in [
            ("sync", ExecutionMode::Synchronous),
            ("async", ExecutionMode::Asynchronous),
        ] {
            g.bench_with_input(BenchmarkId::new(label, template.name()), &sql, |b, sql| {
                let mut w = wsq.lock().unwrap();
                b.iter(|| {
                    w.query_with(
                        sql,
                        QueryOptions {
                            mode,
                            ..Default::default()
                        },
                    )
                    .unwrap()
                })
            });
        }
    }
    g.finish();
}

fn bench_local_sql(c: &mut Criterion) {
    let wsq = Arc::new(std::sync::Mutex::new(bench_wsq(
        LatencyModel::Zero,
        CorpusConfig::small(),
    )));
    let mut g = c.benchmark_group("local_sql");
    g.bench_function("scan_filter_sort", |b| {
        let mut w = wsq.lock().unwrap();
        b.iter(|| {
            w.query(
                "SELECT Name, Population FROM States WHERE Population > 1000000 \
                 ORDER BY Population DESC",
            )
            .unwrap()
        })
    });
    g.bench_function("group_by", |b| {
        let mut w = wsq.lock().unwrap();
        b.iter(|| {
            w.query("SELECT COUNT(*), SUM(Population), AVG(Population) FROM States")
                .unwrap()
        })
    });
    g.finish();
}

fn bench_storage(c: &mut Criterion) {
    use wsq_common::{Column, DataType, Schema, Tuple, Value};
    use wsq_storage::buffer::BufferPool;
    use wsq_storage::disk::MemStorage;
    use wsq_storage::heap::HeapFile;
    use wsq_storage::{codec, BTree};

    let mut g = c.benchmark_group("storage");

    // Heap insert throughput.
    g.bench_function("heap/insert_100", |b| {
        b.iter(|| {
            let pool = Arc::new(BufferPool::new(32));
            let file = pool.register_file(Box::new(MemStorage::new()));
            let heap = HeapFile::create(pool, file).unwrap();
            for i in 0..100u32 {
                heap.insert(&i.to_le_bytes()).unwrap();
            }
            heap
        })
    });

    // B+-tree probe vs full heap scan over 5k rows.
    let pool = Arc::new(BufferPool::new(256));
    let hfile = pool.register_file(Box::new(MemStorage::new()));
    let heap = HeapFile::create(pool.clone(), hfile).unwrap();
    let ifile = pool.register_file(Box::new(MemStorage::new()));
    let tree = BTree::create(pool, ifile).unwrap();
    let schema = Schema::new(vec![
        Column::new("k", DataType::Int),
        Column::new("v", DataType::Varchar),
    ]);
    for i in 0..5000i64 {
        let t = Tuple::new(vec![Value::Int(i % 500), Value::from(format!("row {i}"))]);
        let rid = heap.insert(&codec::encode(&schema, &t).unwrap()).unwrap();
        tree.insert(&codec::encode_key(&Value::Int(i % 500)).unwrap(), rid)
            .unwrap();
    }
    let key = codec::encode_key(&Value::Int(123)).unwrap();
    g.bench_function("btree/probe_5k_rows", |b| {
        b.iter(|| tree.search(&key).unwrap())
    });
    g.bench_function("heap/full_scan_5k_rows", |b| b.iter(|| heap.scan().count()));
    g.finish();
}

criterion_group!(
    benches,
    bench_corpus_generation,
    bench_engine_search,
    bench_pump_roundtrip,
    bench_plan_pipeline,
    bench_query_execution,
    bench_local_sql,
    bench_storage
);
criterion_main!(benches);
