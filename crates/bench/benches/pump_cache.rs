//! Criterion benchmarks for the external-call fast path: the sharded
//! single-flight [`CachedService`] against the coarse single-mutex
//! baseline under 1/4/16/64-thread hit-heavy, miss-heavy and
//! duplicate-miss workloads, plus pump register/wait/release churn.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;
use wsq_bench::fastpath::{
    keyed_request, run_cache_workload, warm_hot_keys, CoarseCachedService, SpinService, Workload,
};
use wsq_common::CallId;
use wsq_pump::{PumpConfig, ReqPump, SearchService};
use wsq_websim::CachedService;

/// Ops per thread per measured round. Small enough that a calibration
/// round finishes quickly, large enough to live in steady contention.
const OPS: usize = 400;

const THREAD_COUNTS: [usize; 4] = [1, 4, 16, 64];

fn bench_cache_workloads(c: &mut Criterion) {
    for (workload, wname) in Workload::all() {
        let mut g = c.benchmark_group(format!("cache/{wname}"));
        g.sample_size(10);
        for threads in THREAD_COUNTS {
            // `round` must advance across iterations so miss workloads
            // stay cold; criterion's closure lets us carry it.
            let mut round = 0usize;
            g.bench_with_input(
                BenchmarkId::new("sharded", threads),
                &threads,
                |b, &threads| {
                    let cache: Arc<dyn SearchService> = {
                        let c = CachedService::new(SpinService::new(2_000));
                        if workload == Workload::HitHeavy {
                            warm_hot_keys(&*c);
                        }
                        c
                    };
                    b.iter(|| {
                        round += 1;
                        run_cache_workload(cache.clone(), workload, threads, OPS, round)
                    })
                },
            );
            let mut round = 0usize;
            g.bench_with_input(
                BenchmarkId::new("coarse", threads),
                &threads,
                |b, &threads| {
                    let cache: Arc<dyn SearchService> = {
                        let c = CoarseCachedService::new(SpinService::new(2_000));
                        if workload == Workload::HitHeavy {
                            warm_hot_keys(&*c);
                        }
                        c
                    };
                    b.iter(|| {
                        round += 1;
                        run_cache_workload(cache.clone(), workload, threads, OPS, round)
                    })
                },
            );
        }
        g.finish();
    }
}

/// Pump churn: every thread registers, waits on, and releases its own
/// calls through the shared pump — exercising targeted wakeups and the
/// atomic stats path under contention.
fn bench_pump_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("pump/churn");
    g.sample_size(10);
    for threads in THREAD_COUNTS {
        g.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let pump = ReqPump::new(PumpConfig {
                    max_concurrent: 256,
                    default_per_destination: 256,
                    coalesce: false,
                    ..PumpConfig::default()
                });
                pump.register_service("AV", SpinService::new(200));
                b.iter(|| {
                    let handles: Vec<_> = (0..threads)
                        .map(|_| {
                            let pump = pump.clone();
                            std::thread::spawn(move || {
                                for k in 0..32 {
                                    let cid: CallId = pump.register(keyed_request(k)).unwrap();
                                    pump.wait(cid).unwrap();
                                    pump.release(cid);
                                }
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join().unwrap();
                    }
                })
            },
        );
    }
    g.finish();
}

/// Batched drain vs per-call peeks: collect the results of a completed
/// batch the way ReqSync does.
fn bench_take_completed(c: &mut Criterion) {
    let pump = ReqPump::new(PumpConfig {
        max_concurrent: 512,
        default_per_destination: 512,
        ..PumpConfig::default()
    });
    pump.register_service("AV", SpinService::new(0));
    let ids: Vec<CallId> = (0..256)
        .map(|k| pump.register(keyed_request(k)).unwrap())
        .collect();
    for &cid in &ids {
        pump.wait(cid).unwrap();
    }
    let mut g = c.benchmark_group("pump/drain256");
    g.bench_function("take_completed", |b| b.iter(|| pump.take_completed(&ids)));
    g.bench_function("per_call_peek", |b| {
        b.iter(|| {
            ids.iter()
                .filter_map(|&cid| pump.peek(cid).map(|r| (cid, r)))
                .collect::<Vec<_>>()
        })
    });
    g.finish();
    std::hint::black_box(Duration::ZERO);
}

criterion_group!(
    benches,
    bench_cache_workloads,
    bench_pump_churn,
    bench_take_completed
);
criterion_main!(benches);
