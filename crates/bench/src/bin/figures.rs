//! Regenerate the paper's plan-diagram figures (2–8) as EXPLAIN trees.
//!
//! ```sh
//! cargo run -p wsq-bench --bin figures
//! ```
//!
//! Figure 1 is the architecture sketch (see README). Figures 2–8 are query
//! plans; each section below prints the corresponding plan produced by
//! this implementation's planner + asyncification pass.

use wsq_bench::bench_wsq;
use wsq_core::{ExecutionMode, PlacementStrategy, QueryOptions, Wsq};
use wsq_websim::{CorpusConfig, LatencyModel};

fn sync() -> QueryOptions {
    QueryOptions {
        mode: ExecutionMode::Synchronous,
        ..Default::default()
    }
}

fn asynchronous() -> QueryOptions {
    QueryOptions {
        mode: ExecutionMode::Asynchronous,
        ..Default::default()
    }
}

fn section(wsq: &Wsq, title: &str, sql: &str, opts: QueryOptions) {
    println!("────────────────────────────────────────────────────────");
    println!("{title}");
    println!("  {sql}\n");
    match wsq.explain_with(sql, opts) {
        Ok(plan) => println!("{plan}"),
        Err(e) => println!("error: {e}\n"),
    }
}

fn main() {
    let mut wsq = bench_wsq(LatencyModel::Zero, CorpusConfig::small());
    wsq.execute("CREATE TABLE R (N INT)").unwrap();
    wsq.execute("INSERT INTO R VALUES (1), (2), (3)").unwrap();

    let sigs_webcount = "SELECT Name, Count FROM Sigs, WebCount \
                         WHERE Name = T1 AND T2 = 'Knuth' ORDER BY Count DESC";
    section(
        &wsq,
        "Figure 2 — sequential plan for Sigs ⋈ WebCount",
        sigs_webcount,
        sync(),
    );
    section(
        &wsq,
        "Figure 3 — the same query under asynchronous iteration",
        sigs_webcount,
        asynchronous(),
    );

    section(
        &wsq,
        "Figure 4 — Sigs ⋈ WebPages (top 3 URLs per Sig)",
        "SELECT Name, URL, Rank FROM Sigs, WebPages WHERE Name = T1 AND Rank <= 3",
        asynchronous(),
    );

    let two_engines = "SELECT Name, AV.URL, G.URL \
                       FROM Sigs, WebPages_AV AV, WebPages_Google G \
                       WHERE Name = AV.T1 AND Name = G.T1 \
                       AND AV.Rank <= 3 AND G.Rank <= 3";
    section(
        &wsq,
        "Figure 6(a) — input plan for Sigs ⋈ WebPages_AV ⋈ WebPages_Google",
        two_engines,
        sync(),
    );
    section(
        &wsq,
        "Figures 5 / 6(d) — after Insertion, Percolation and Consolidation \
         (one ReqSync covering both engines)",
        two_engines,
        asynchronous(),
    );

    let with_r = "SELECT Name, AV.Count, N, G.Count \
                  FROM Sigs, WebCount_AV AV, R, WebCount_Google G \
                  WHERE Name = AV.T1 AND Name = G.T1";
    section(
        &wsq,
        "Figure 7(a) — cross-product with meaningless R; fully-percolated \
         single ReqSync",
        with_r,
        asynchronous(),
    );
    section(
        &wsq,
        "Figure 7(b) — the alternative placement: one ReqSync pinned per \
         dependent join (PlacementStrategy::InsertionOnly)",
        with_r,
        QueryOptions {
            mode: ExecutionMode::Asynchronous,
            strategy: PlacementStrategy::InsertionOnly,
            ..Default::default()
        },
    );

    let bushy = "SELECT S.URL FROM Sigs, WebPages S, CSFields, WebPages_AV C \
                 WHERE Sigs.Name = S.T1 AND CSFields.Name = C.T1 \
                 AND S.Rank <= 5 AND C.Rank <= 5 AND S.URL = C.URL";
    section(
        &wsq,
        "Figure 8(a) — input plan for the Sigs/CSFields URL intersection \
         (this planner builds it left-deep rather than bushy)",
        bushy,
        sync(),
    );
    section(
        &wsq,
        "Figure 8(b) — transformed: the URL join became a selection over a \
         cross-product, re-attached above the consolidated ReqSync",
        bushy,
        asynchronous(),
    );
}
