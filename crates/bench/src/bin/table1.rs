//! Reproduce the paper's **Table 1**: average execution time of the three
//! evaluation templates, synchronous vs asynchronous iteration, two runs
//! of eight query instances each.
//!
//! ```sh
//! cargo run -p wsq-bench --release --bin table1            # full scale
//! cargo run -p wsq-bench --release --bin table1 -- --quick # smoke run
//! ```
//!
//! Simulated per-request latency defaults to 40ms + up-to-25ms
//! deterministic jitter — a ~20× scale-down of 1999 search-engine latency
//! so the full suite finishes in minutes. Absolute seconds therefore
//! differ from the paper by that factor; the *improvement factors* are the
//! reproduced quantity.

use wsq_bench::{bench_wsq, paper_table1, render_table1, run_template, BenchScale, Template};
use wsq_websim::CorpusConfig;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        BenchScale::quick()
    } else {
        BenchScale::paper()
    };
    println!(
        "WSQ Table 1 reproduction — latency {:?}+{:?} jitter, {} queries/run, {} runs\n",
        scale.base_latency, scale.jitter, scale.queries_per_run, scale.runs
    );

    let mut wsq = bench_wsq(scale.latency(), CorpusConfig::default());

    let mut results = Vec::new();
    for template in Template::all() {
        for run in 1..=scale.runs {
            eprintln!("... {} run {run}", template.name());
            results.push(run_template(&mut wsq, template, run, &scale));
        }
    }

    println!("{}", render_table1(&results));

    println!("Paper's Table 1 (Sun Ultra-2, live AltaVista/Google, Oct 1999):");
    println!(
        "{:<24}{:>20}{:>22}{:>14}",
        "", "Synchronous (secs)", "Asynchronous (secs)", "Improvement"
    );
    for (row, s, a, i) in paper_table1() {
        println!("{row:<24}{s:>20.2}{a:>22.2}{i:>13.1}x");
    }

    // Shape check: improvements grow with per-query call count, and
    // asynchronous iteration wins by ~an order of magnitude overall.
    let avg = |t: Template| {
        let rs: Vec<&_> = results.iter().filter(|r| r.template == t).collect();
        rs.iter().map(|r| r.improvement()).sum::<f64>() / rs.len() as f64
    };
    let (i1, i2, i3) = (avg(Template::One), avg(Template::Two), avg(Template::Three));
    println!("\nShape check:");
    println!("  improvement(T1) = {i1:.1}x  (paper: 6.0–9.4x)");
    println!("  improvement(T2) = {i2:.1}x  (paper: 12.5–13.5x)");
    println!("  improvement(T3) = {i3:.1}x  (paper: 16.4–19.6x)");
    println!(
        "  monotone in call count (T2 > T1): {}   order-of-magnitude speedup: {}",
        i2 > i1,
        (i1 + i2 + i3) / 3.0 >= 10.0
    );
    println!("\npump stats: {:?}", wsq.pump().stats());
}
