//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Concurrency cap sweep** — asynchronous iteration's win as a
//!    function of ReqPump's `max_concurrent` (1 ≈ sequential).
//! 2. **Latency sweep** — sync vs async across simulated latencies
//!    (crossover behavior: at zero latency async is pure overhead).
//! 3. **Placement strategy** — full percolation vs insertion-only on a
//!    multi-join query (the Figure 7 trade-off).
//! 4. **ReqSync buffering** — full buffering vs streaming pass-through.
//! 5. **Coalescing & caching** — duplicate-call suppression on the
//!    Figure 7 cross-product query.
//!
//! ```sh
//! cargo run -p wsq-bench --release --bin ablations
//! cargo run -p wsq-bench --release --bin ablations -- --quick
//! ```

use std::time::{Duration, Instant};
use wsq_bench::{constant_pool, time_query, Template};
use wsq_core::{BufferMode, ExecutionMode, PlacementStrategy, QueryOptions, Wsq, WsqConfig};
use wsq_pump::PumpConfig;
use wsq_websim::{CorpusConfig, LatencyModel};

fn latency(ms: u64) -> LatencyModel {
    if ms == 0 {
        LatencyModel::Zero
    } else {
        LatencyModel::Jitter {
            base: Duration::from_millis(ms),
            jitter: Duration::from_millis(ms / 2),
        }
    }
}

fn wsq_with(lat: LatencyModel, max_concurrent: usize, coalesce: bool, cache: bool) -> Wsq {
    let config = WsqConfig {
        corpus: CorpusConfig::default(),
        latency: lat,
        pump: PumpConfig {
            max_concurrent,
            coalesce,
            ..PumpConfig::default()
        },
        cache,
        ..WsqConfig::default()
    };
    let mut wsq = Wsq::open_in_memory(config).expect("wsq");
    wsq.load_reference_data().expect("data");
    wsq
}

fn timed(wsq: &mut Wsq, sql: &str, opts: QueryOptions) -> f64 {
    let t0 = Instant::now();
    wsq.query_with(sql, opts).expect("query");
    t0.elapsed().as_secs_f64()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let base_ms: u64 = if quick { 10 } else { 30 };
    let pool = constant_pool();
    let t1 = Template::One.instantiate(&pool, 0);

    // ---------------------------------------------------------------
    println!("=== Ablation 1: ReqPump concurrency cap (Template 1, {base_ms}ms latency)");
    println!("{:<16}{:>12}{:>12}", "max_concurrent", "secs", "speedup");
    let caps: &[usize] = if quick {
        &[1, 8, 64]
    } else {
        &[1, 2, 4, 8, 16, 32, 64]
    };
    let mut sequential = None;
    for &cap in caps {
        let mut wsq = wsq_with(latency(base_ms), cap, true, false);
        let secs = timed(&mut wsq, &t1, QueryOptions::default());
        let seq = *sequential.get_or_insert(secs);
        println!("{cap:<16}{secs:>12.3}{:>11.1}x", seq / secs);
    }

    // ---------------------------------------------------------------
    println!("\n=== Ablation 2: latency sweep (Template 1, sync vs async)");
    println!(
        "{:<14}{:>12}{:>12}{:>12}",
        "latency(ms)", "sync", "async", "speedup"
    );
    let lats: &[u64] = if quick {
        &[0, 20]
    } else {
        &[0, 5, 10, 20, 40, 80]
    };
    for &ms in lats {
        let mut wsq = wsq_with(latency(ms), 64, true, false);
        let s = timed(
            &mut wsq,
            &t1,
            QueryOptions {
                mode: ExecutionMode::Synchronous,
                ..Default::default()
            },
        );
        let a = timed(&mut wsq, &t1, QueryOptions::default());
        println!("{ms:<14}{s:>12.3}{a:>12.3}{:>11.1}x", s / a.max(1e-9));
    }

    // ---------------------------------------------------------------
    println!("\n=== Ablation 3: ReqSync placement (Template 3, {base_ms}ms latency)");
    let t3 = Template::Three.instantiate(&pool, 0);
    for (name, strategy) in [
        ("Full percolation", PlacementStrategy::Full),
        ("Insertion-only", PlacementStrategy::InsertionOnly),
    ] {
        let mut wsq = wsq_with(latency(base_ms), 64, true, false);
        let secs = timed(
            &mut wsq,
            &t3,
            QueryOptions {
                mode: ExecutionMode::Asynchronous,
                strategy,
                ..Default::default()
            },
        );
        println!("{name:<20}{secs:>10.3}s");
    }

    // ---------------------------------------------------------------
    println!("\n=== Ablation 4: ReqSync buffering (Template 2, {base_ms}ms latency)");
    let t2 = Template::Two.instantiate(&pool, 0);
    for (name, buffer) in [
        ("Full buffering", BufferMode::Full),
        ("Streaming", BufferMode::Streaming),
    ] {
        let mut wsq = wsq_with(latency(base_ms), 64, true, false);
        let secs = timed(
            &mut wsq,
            &t2,
            QueryOptions {
                mode: ExecutionMode::Asynchronous,
                buffer,
                ..Default::default()
            },
        );
        println!("{name:<20}{secs:>10.3}s");
    }

    // ---------------------------------------------------------------
    println!("\n=== Ablation 5: coalescing & caching (Figure 7 query: |R| duplicate calls)");
    let fig7 = "SELECT Name, AV.Count, N, G.Count \
                FROM Sigs, WebCount_AV AV, R, WebCount_Google G \
                WHERE Name = AV.T1 AND Name = G.T1";
    println!(
        "{:<26}{:>10}{:>12}{:>12}",
        "configuration", "secs", "launched", "cache hits"
    );
    for (name, coalesce, cache) in [
        ("no coalesce, no cache", false, false),
        ("coalesce", true, false),
        ("coalesce + cache", true, true),
    ] {
        let mut wsq = wsq_with(latency(base_ms), 64, coalesce, cache);
        wsq.execute("CREATE TABLE R (N INT)").unwrap();
        wsq.execute("INSERT INTO R VALUES (1), (2), (3), (4)")
            .unwrap();
        let secs = timed(&mut wsq, fig7, QueryOptions::default());
        let stats = wsq.pump().stats();
        let hits: u64 = wsq.cache_stats().values().map(|c| c.hits).sum();
        println!("{name:<26}{secs:>10.3}{:>12}{hits:>12}", stats.launched);
    }

    // ---------------------------------------------------------------
    // The paper's declared future work (§4.2): asynchronous iteration vs a
    // parallel query processor. `ParallelJoins` is the thread-per-request
    // dependent join of §4.5.4 Example 1: within one join it matches async
    // concurrency, but a *stack* of joins serializes join-by-join and each
    // concurrent request costs an OS thread.
    println!("\n=== Ablation 7: execution mode comparison ({base_ms}ms latency)");
    println!(
        "{:<14}{:>14}{:>14}{:>16}",
        "template", "sequential", "parallel DJ", "async iteration"
    );
    for (name, template) in [("Template 1", Template::One), ("Template 2", Template::Two)] {
        let sql = template.instantiate(&pool, 0);
        let mut row = format!("{name:<14}");
        for mode in [
            ExecutionMode::Synchronous,
            ExecutionMode::ParallelJoins,
            ExecutionMode::Asynchronous,
        ] {
            let mut wsq = wsq_with(latency(base_ms), 64, true, false);
            let secs = timed(
                &mut wsq,
                &sql,
                QueryOptions {
                    mode,
                    parallel_threads: 64,
                    ..Default::default()
                },
            );
            row.push_str(&format!("{secs:>13.3}s"));
        }
        println!("{row}");
    }
    println!(
        "(parallel DJ matches async on single-join T1; on multi-join T2 the\n\
         joins serialize — the §4.5.4 criticism — while async overlaps all calls)"
    );

    // ---------------------------------------------------------------
    println!("\n=== Ablation 6: WebPages fan-out (rank limit, {base_ms}ms latency)");
    println!("{:<12}{:>10}{:>10}", "Rank <=", "rows", "secs");
    let ranks: &[u32] = if quick { &[1, 5] } else { &[1, 2, 5, 10, 19] };
    for &k in ranks {
        let sql =
            format!("SELECT Name, URL, Rank FROM Sigs, WebPages WHERE Name = T1 AND Rank <= {k}");
        let mut wsq = wsq_with(latency(base_ms), 64, true, false);
        let t0 = Instant::now();
        let (_, rows) = time_query(&mut wsq, &sql, ExecutionMode::Asynchronous);
        println!("{k:<12}{rows:>10}{:>10.3}", t0.elapsed().as_secs_f64());
    }
}
