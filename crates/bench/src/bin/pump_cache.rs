//! Measure the external-call fast path and emit `BENCH_pump_cache.json`.
//!
//! ```sh
//! cargo run -p wsq-bench --release --bin pump_cache            # full
//! cargo run -p wsq-bench --release --bin pump_cache -- --quick # smoke
//! ```
//!
//! Compares the sharded single-flight `CachedService` against the
//! pre-sharding coarse single-mutex baseline under hit-heavy, miss-heavy
//! and duplicate-miss workloads at 1/4/16/64 threads, verifies the
//! single-flight invariant (one inner call per distinct in-flight
//! request), and times pump completion delivery.

use std::sync::Arc;
use std::time::Duration;
use wsq_bench::fastpath::{
    keyed_request, run_cache_workload, warm_hot_keys, CoarseCachedService, SleepService,
    SpinService, Workload, STORM_KEYS,
};
use wsq_common::CallId;
use wsq_obs::Obs;
use wsq_pump::{PumpConfig, ReqPump, SearchService};
use wsq_websim::{CacheConfig, CachedService};

struct Measurement {
    workload: &'static str,
    threads: usize,
    implementation: &'static str,
    median_ms: f64,
    throughput_mops: f64,
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Median wall time (ms) over `rounds` runs of a workload.
fn measure(
    make_cache: &dyn Fn() -> Arc<dyn SearchService>,
    workload: Workload,
    threads: usize,
    ops: usize,
    rounds: usize,
) -> f64 {
    let cache = make_cache();
    if workload == Workload::HitHeavy {
        warm_hot_keys(&*cache);
    }
    let mut samples: Vec<f64> = (0..rounds)
        .map(|round| {
            run_cache_workload(cache.clone(), workload, threads, ops, round).as_secs_f64() * 1e3
        })
        .collect();
    median(&mut samples)
}

struct SingleFlight {
    requests: u64,
    inner_calls: u64,
    misses: u64,
    coalesced: u64,
    coarse_inner_calls: u64,
    verified: bool,
}

/// The single-flight acceptance check: many threads storm the same cold
/// keys against a *blocking* backend (5 ms per call, standing in for a
/// network round-trip). The sharded cache must send exactly one call per
/// distinct request to the backend; the coarse baseline is run on the
/// same storm to count its redundant calls — every thread that misses
/// while the first caller is still blocked issues its own.
fn verify_single_flight(threads: usize, ops: usize) -> SingleFlight {
    let backend = Duration::from_millis(5);
    let inner = SleepService::new(backend);
    let cache = CachedService::new(inner.clone());
    run_cache_workload(cache.clone(), Workload::DuplicateMiss, threads, ops, 0);
    let stats = cache.stats();
    let requests = (threads * ops) as u64;

    let coarse_inner = SleepService::new(backend);
    let coarse = CoarseCachedService::new(coarse_inner.clone());
    run_cache_workload(coarse, Workload::DuplicateMiss, threads, ops, 0);

    let verified = inner.calls() == STORM_KEYS as u64
        && stats.misses == inner.calls()
        && stats.hits + stats.misses == requests;
    SingleFlight {
        requests,
        inner_calls: inner.calls(),
        misses: stats.misses,
        coalesced: stats.coalesced,
        coarse_inner_calls: coarse_inner.calls(),
        verified,
    }
}

struct ObsAblation {
    threads: usize,
    baseline_ms: f64,
    disabled_ms: f64,
    enabled_ms: f64,
    /// Disabled-obs run vs its baseline A/A re-run: run-to-run noise
    /// plus the no-op sink's null check, budgeted at under 2%.
    disabled_delta_pct: f64,
    /// Enabled-obs run vs the disabled run: the cost of live counters,
    /// histograms and trace-ring writes.
    enabled_overhead_pct: f64,
    /// `Obs::json_snapshot` of the enabled run's registry.
    metrics_json: String,
}

/// The observability overhead ablation: the duplicate-miss storm (hits,
/// misses and coalesced waits all on the hot path) run three times —
/// twice with a disabled `Obs` handle (an A/A pair whose delta is the
/// measurement noise floor) and once with a live registry. The disabled
/// path must stay within the 2% budget of its own re-run; the enabled
/// delta on top of that is the true cost of counters and histograms.
fn measure_obs_ablation(threads: usize, ops: usize, rounds: usize) -> ObsAblation {
    let run = |obs: Obs| -> f64 {
        let cache: Arc<dyn SearchService> =
            CachedService::with_config_obs(SpinService::new(2_000), CacheConfig::default(), obs);
        let mut samples: Vec<f64> = (0..rounds)
            .map(|round| {
                run_cache_workload(cache.clone(), Workload::DuplicateMiss, threads, ops, round)
                    .as_secs_f64()
                    * 1e3
            })
            .collect();
        median(&mut samples)
    };
    let baseline_ms = run(Obs::disabled());
    let disabled_ms = run(Obs::disabled());
    let obs = Obs::enabled();
    let enabled_ms = run(obs.clone());
    ObsAblation {
        threads,
        baseline_ms,
        disabled_ms,
        enabled_ms,
        disabled_delta_pct: (disabled_ms - baseline_ms) / baseline_ms * 100.0,
        enabled_overhead_pct: (enabled_ms - disabled_ms) / disabled_ms * 100.0,
        metrics_json: obs.json_snapshot(),
    }
}

struct CapAblation {
    cap: Option<usize>,
    median_ms: f64,
    buffered_high_water: i64,
    stalls: u64,
    identical_rows: bool,
}

/// The admission-control ablation (DESIGN.md §11): the 50-state WebCount
/// fan-out under jittered latency with the ReqSync buffer unbounded,
/// capped at 64 (above the fan-out, so the cap never binds) and capped
/// at 8 (binds hard, ~6× below the unbounded peak). Row output must be
/// byte-identical across caps; what the cap trades is peak buffer
/// occupancy against stall time.
fn measure_cap_ablation(rounds: usize) -> Vec<CapAblation> {
    use wsq_core::{Wsq, WsqConfig};
    use wsq_websim::LatencyModel;
    let query = "SELECT Name, Count FROM States, WebCount WHERE Name = T1 \
                 ORDER BY Count DESC, Name";
    let latency = LatencyModel::Jitter {
        base: Duration::from_millis(1),
        jitter: Duration::from_millis(2),
    };
    let mut reference: Option<String> = None;
    [None, Some(64usize), Some(8)]
        .into_iter()
        .map(|cap| {
            let mut wsq = Wsq::open_in_memory(WsqConfig {
                latency,
                reqsync_buffer_cap: cap,
                ..WsqConfig::fast()
            })
            .expect("open wsq");
            wsq.load_reference_data().expect("reference data");
            let mut identical_rows = true;
            let mut samples: Vec<f64> = (0..rounds)
                .map(|_| {
                    let t0 = std::time::Instant::now();
                    let rows = wsq.query(query).expect("fan-out query").to_table();
                    let ms = t0.elapsed().as_secs_f64() * 1e3;
                    match &reference {
                        Some(r) => identical_rows &= rows == *r,
                        None => reference = Some(rows),
                    }
                    ms
                })
                .collect();
            let m = wsq.obs().metrics().expect("obs enabled by default");
            CapAblation {
                cap,
                median_ms: median(&mut samples),
                // Reset at every query window open: the last query's peak.
                buffered_high_water: m.reqsync_buffered.high_water(),
                stalls: m.reqsync_stalls.get(),
                identical_rows,
            }
        })
        .collect()
}

struct PrefetchAblation {
    depth: usize,
    window: usize,
    adaptive: bool,
    median_ms: f64,
    prefetch_issued: u64,
    prefetch_wasted: u64,
    batches: u64,
    identical_rows: bool,
}

/// The ahead-of-need prefetch ablation (DESIGN.md §12): the 50-state
/// WebCount fan-out under jittered latency with a binding ReqSync cap of
/// 4, across prefetch depth 0 (demand-driven), 4, and adaptive (cap 16,
/// clamped to the admission cap) × submission window 1 and 8. The cap
/// stalls the demand-driven join at ~4 overlapped calls; prefetch keeps
/// `depth` additional registrations in flight ahead of demand, so depth 4
/// roughly doubles the overlap. Rows must be byte-identical across every
/// configuration.
fn measure_prefetch_ablation(rounds: usize) -> Vec<PrefetchAblation> {
    use wsq_core::{QueryOptions, Wsq, WsqConfig};
    use wsq_websim::LatencyModel;
    let query = "SELECT Name, Count FROM States, WebCount WHERE Name = T1 \
                 ORDER BY Count DESC, Name";
    let latency = LatencyModel::Jitter {
        base: Duration::from_millis(1),
        jitter: Duration::from_millis(2),
    };
    let mut reference: Option<String> = None;
    let mut out = Vec::new();
    for (depth, adaptive) in [(0usize, false), (4, false), (16, true)] {
        for window in [1usize, 8] {
            let mut wsq = Wsq::open_in_memory(WsqConfig {
                latency,
                pump: PumpConfig {
                    submission_window: window,
                    ..PumpConfig::default()
                },
                ..WsqConfig::fast()
            })
            .expect("open wsq");
            wsq.load_reference_data().expect("reference data");
            let opts = QueryOptions {
                reqsync_cap: Some(4),
                prefetch_depth: depth,
                prefetch_window: window,
                prefetch_adaptive: adaptive,
                ..Default::default()
            };
            let mut identical_rows = true;
            let mut samples: Vec<f64> = (0..rounds)
                .map(|_| {
                    let t0 = std::time::Instant::now();
                    let rows = wsq
                        .query_with(query, opts)
                        .expect("fan-out query")
                        .to_table();
                    let ms = t0.elapsed().as_secs_f64() * 1e3;
                    match &reference {
                        Some(r) => identical_rows &= rows == *r,
                        None => reference = Some(rows),
                    }
                    ms
                })
                .collect();
            let m = wsq.obs().metrics().expect("obs enabled by default");
            out.push(PrefetchAblation {
                depth,
                window,
                adaptive,
                median_ms: median(&mut samples),
                prefetch_issued: m.prefetch_issued.get(),
                prefetch_wasted: m.prefetch_wasted.get(),
                batches: wsq.pump().stats().batches,
                identical_rows,
            });
        }
    }
    out
}

/// Time pump register/wait/release churn across threads.
fn measure_pump_churn(threads: usize, calls: usize, rounds: usize) -> f64 {
    let pump = ReqPump::new(PumpConfig {
        max_concurrent: 256,
        default_per_destination: 256,
        coalesce: false,
        ..PumpConfig::default()
    });
    pump.register_service("AV", SpinService::new(200));
    let mut samples: Vec<f64> = (0..rounds)
        .map(|_| {
            let t0 = std::time::Instant::now();
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let pump = pump.clone();
                    std::thread::spawn(move || {
                        for k in 0..calls {
                            let cid: CallId = pump.register(keyed_request(k)).unwrap();
                            pump.wait(cid).unwrap();
                            pump.release(cid);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    median(&mut samples)
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (ops, rounds, thread_counts): (usize, usize, &[usize]) = if quick {
        (500, 3, &[1, 4, 16])
    } else {
        (2000, 5, &[1, 4, 16, 64])
    };

    let sharded: Box<dyn Fn() -> Arc<dyn SearchService>> =
        Box::new(|| CachedService::new(SpinService::new(2_000)) as Arc<dyn SearchService>);
    let coarse: Box<dyn Fn() -> Arc<dyn SearchService>> =
        Box::new(|| CoarseCachedService::new(SpinService::new(2_000)) as Arc<dyn SearchService>);

    let mut measurements: Vec<Measurement> = Vec::new();
    for (workload, wname) in Workload::all() {
        for &threads in thread_counts {
            for (implementation, make) in [("sharded", &sharded), ("coarse", &coarse)] {
                eprintln!("... {wname} x{threads} {implementation}");
                let ms = measure(make.as_ref(), workload, threads, ops, rounds);
                let mops = (threads * ops) as f64 / (ms / 1e3) / 1e6;
                measurements.push(Measurement {
                    workload: wname,
                    threads,
                    implementation,
                    median_ms: ms,
                    throughput_mops: mops,
                });
            }
        }
    }

    eprintln!("... single-flight verification");
    let sf_threads = *thread_counts.last().unwrap();
    let sf = verify_single_flight(sf_threads, ops.min(64));

    let mut pump_rows: Vec<(usize, f64)> = Vec::new();
    for &threads in thread_counts {
        eprintln!("... pump churn x{threads}");
        pump_rows.push((threads, measure_pump_churn(threads, 32, rounds)));
    }

    eprintln!("... obs overhead ablation");
    let obs = measure_obs_ablation(*thread_counts.last().unwrap(), ops, rounds);

    eprintln!("... reqsync cap ablation");
    let caps = measure_cap_ablation(rounds);

    eprintln!("... prefetch ablation");
    let prefetch = measure_prefetch_ablation(rounds);

    // Render the report.
    println!(
        "{:<16}{:>8}{:>10}{:>12}{:>14}",
        "workload", "threads", "impl", "median ms", "Mops/s"
    );
    for m in &measurements {
        println!(
            "{:<16}{:>8}{:>10}{:>12.3}{:>14.3}",
            m.workload, m.threads, m.implementation, m.median_ms, m.throughput_mops
        );
    }
    println!(
        "\nsingle-flight: {} requests -> {} backend calls sharded vs {} coarse \
         ({} misses, {} coalesced) verified={}",
        sf.requests, sf.inner_calls, sf.coarse_inner_calls, sf.misses, sf.coalesced, sf.verified
    );
    for (threads, ms) in &pump_rows {
        println!("pump churn x{threads}: {ms:.3} ms");
    }
    println!(
        "obs ablation x{}: baseline {:.3} ms, disabled {:.3} ms ({:+.2}%), \
         enabled {:.3} ms ({:+.2}%)",
        obs.threads,
        obs.baseline_ms,
        obs.disabled_ms,
        obs.disabled_delta_pct,
        obs.enabled_ms,
        obs.enabled_overhead_pct,
    );

    for c in &caps {
        println!(
            "cap ablation cap={}: {:.3} ms, buffered high-water {}, {} stalls, identical={}",
            c.cap.map_or("inf".to_string(), |n| n.to_string()),
            c.median_ms,
            c.buffered_high_water,
            c.stalls,
            c.identical_rows,
        );
    }

    let demand_ms = prefetch
        .iter()
        .find(|p| p.depth == 0 && p.window == 1)
        .map_or(f64::NAN, |p| p.median_ms);
    for p in &prefetch {
        let label = if p.adaptive {
            "adaptive".to_string()
        } else {
            p.depth.to_string()
        };
        println!(
            "prefetch ablation depth={label} window={}: {:.3} ms ({:+.1}% vs demand-driven), \
             issued {}, wasted {}, {} batches, identical={}",
            p.window,
            p.median_ms,
            (p.median_ms - demand_ms) / demand_ms * 100.0,
            p.prefetch_issued,
            p.prefetch_wasted,
            p.batches,
            p.identical_rows,
        );
    }

    // Speedups of sharded over coarse per (workload, threads).
    let speedup = |wname: &str, threads: usize| -> f64 {
        let find = |imp: &str| {
            measurements
                .iter()
                .find(|m| m.workload == wname && m.threads == threads && m.implementation == imp)
                .map(|m| m.median_ms)
                .unwrap_or(f64::NAN)
        };
        find("coarse") / find("sharded")
    };

    // Hand-rolled JSON: the workspace intentionally has no serde.
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    if cores == 1 {
        println!(
            "\nWARNING: single-core host (config.cores == 1) — contention and \
             overlap numbers are not representative; treat every speedup and \
             the prefetch ablation as smoke coverage only."
        );
        eprintln!("WARNING: single-core host; timings are smoke coverage only");
    }
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"config\": {{\"quick\": {quick}, \"ops_per_thread\": {ops}, \
         \"rounds\": {rounds}, \"cores\": {cores}}},\n"
    ));
    out.push_str("  \"cache\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"threads\": {}, \"impl\": \"{}\", \
             \"median_ms\": {}, \"throughput_mops\": {}}}{}\n",
            m.workload,
            m.threads,
            m.implementation,
            json_f(m.median_ms),
            json_f(m.throughput_mops),
            if i + 1 == measurements.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"speedup_sharded_over_coarse\": {\n");
    let mut first = true;
    for (_, wname) in Workload::all() {
        for &threads in thread_counts {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "    \"{wname}_x{threads}\": {}",
                json_f(speedup(wname, threads))
            ));
        }
    }
    out.push_str("\n  },\n");
    out.push_str(&format!(
        "  \"single_flight\": {{\"threads\": {sf_threads}, \"requests\": {}, \
         \"distinct_requests\": {STORM_KEYS}, \"sharded_backend_calls\": {}, \
         \"coarse_backend_calls\": {}, \"misses\": {}, \"coalesced\": {}, \
         \"verified\": {}}},\n",
        sf.requests, sf.inner_calls, sf.coarse_inner_calls, sf.misses, sf.coalesced, sf.verified
    ));
    out.push_str("  \"pump_churn\": [\n");
    for (i, (threads, ms)) in pump_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"threads\": {threads}, \"median_ms\": {}}}{}\n",
            json_f(*ms),
            if i + 1 == pump_rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"obs_ablation\": {{\"threads\": {}, \"baseline_ms\": {}, \
         \"disabled_ms\": {}, \"enabled_ms\": {}, \"disabled_delta_pct\": {}, \
         \"enabled_overhead_pct\": {}}},\n",
        obs.threads,
        json_f(obs.baseline_ms),
        json_f(obs.disabled_ms),
        json_f(obs.enabled_ms),
        json_f(obs.disabled_delta_pct),
        json_f(obs.enabled_overhead_pct),
    ));
    out.push_str("  \"cap_ablation\": [\n");
    for (i, c) in caps.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"cap\": {}, \"median_ms\": {}, \"buffered_high_water\": {}, \
             \"stalls\": {}, \"identical_rows\": {}}}{}\n",
            c.cap.map_or("null".to_string(), |n| n.to_string()),
            json_f(c.median_ms),
            c.buffered_high_water,
            c.stalls,
            c.identical_rows,
            if i + 1 == caps.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"prefetch_ablation\": {\n    \"cap\": 4,\n    \"runs\": [\n");
    for (i, p) in prefetch.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"depth\": {}, \"window\": {}, \"adaptive\": {}, \
             \"median_ms\": {}, \"prefetch_issued\": {}, \"prefetch_wasted\": {}, \
             \"batches\": {}, \"identical_rows\": {}}}{}\n",
            p.depth,
            p.window,
            p.adaptive,
            json_f(p.median_ms),
            p.prefetch_issued,
            p.prefetch_wasted,
            p.batches,
            p.identical_rows,
            if i + 1 == prefetch.len() { "" } else { "," }
        ));
    }
    let best = prefetch
        .iter()
        .find(|p| p.depth == 4 && p.window == 8)
        .map_or(f64::NAN, |p| p.median_ms);
    out.push_str(&format!(
        "    ],\n    \"reduction_pct_depth4_window8\": {}\n  }},\n",
        json_f((demand_ms - best) / demand_ms * 100.0)
    ));
    // Registry snapshot from the obs-enabled ablation run, so a bench
    // artifact also records what the workload did (hits, misses,
    // coalesced waits) — not just how fast it did it.
    out.push_str(&format!("  \"metrics\": {}\n}}\n", obs.metrics_json));

    std::fs::write("BENCH_pump_cache.json", &out).expect("write BENCH_pump_cache.json");
    eprintln!("wrote BENCH_pump_cache.json");
    assert!(sf.verified, "single-flight invariant violated");
    for p in &prefetch {
        assert!(
            p.identical_rows,
            "prefetch depth={} window={} changed the fan-out's rows",
            p.depth, p.window
        );
    }
    for c in &caps {
        assert!(
            c.identical_rows,
            "cap {:?} changed the fan-out's rows",
            c.cap
        );
        if let Some(n) = c.cap {
            assert!(
                c.buffered_high_water <= n as i64,
                "cap {n} exceeded: high-water {}",
                c.buffered_high_water
            );
        }
    }
    std::hint::black_box(Duration::ZERO);
}
