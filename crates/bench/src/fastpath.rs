//! Shared harness for the external-call fast-path benchmarks: the
//! single-mutex cache baseline, synthetic services, and multi-threaded
//! workload drivers used by both the criterion bench (`pump_cache`) and
//! the JSON-emitting binary of the same name.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};
use wsq_pump::{RequestKind, SearchRequest, SearchResult, SearchService, ServiceReply};

/// The pre-sharding cache design: one mutex around the whole map and a
/// second around the counters. Retained verbatim as the baseline the
/// sharded [`wsq_websim::CachedService`] is measured against.
pub struct CoarseCachedService {
    inner: Arc<dyn SearchService>,
    cache: Mutex<HashMap<SearchRequest, SearchResult>>,
    stats: Mutex<(u64, u64)>, // (hits, misses)
}

impl CoarseCachedService {
    /// Wrap `inner` with the coarse-grained cache.
    pub fn new(inner: Arc<dyn SearchService>) -> Arc<Self> {
        Arc::new(CoarseCachedService {
            inner,
            cache: Mutex::new(HashMap::new()),
            stats: Mutex::new((0, 0)),
        })
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        *self.stats.lock()
    }
}

impl SearchService for CoarseCachedService {
    fn execute(&self, req: &SearchRequest) -> ServiceReply {
        if let Some(result) = self.cache.lock().get(req).cloned() {
            self.stats.lock().0 += 1;
            return ServiceReply {
                result: Ok(result),
                latency: Duration::ZERO,
            };
        }
        self.stats.lock().1 += 1;
        let reply = self.inner.execute(req);
        if let Ok(result) = &reply.result {
            self.cache.lock().insert(req.clone(), result.clone());
        }
        reply
    }
}

/// A counting backend whose `execute` burns a small fixed amount of CPU,
/// standing in for the engine's index probe.
pub struct SpinService {
    calls: AtomicU64,
    spin: u64,
}

impl SpinService {
    /// A backend spinning for roughly `spin` iterations per call.
    pub fn new(spin: u64) -> Arc<Self> {
        Arc::new(SpinService {
            calls: AtomicU64::new(0),
            spin,
        })
    }

    /// Number of calls that reached the backend.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

impl SearchService for SpinService {
    fn execute(&self, req: &SearchRequest) -> ServiceReply {
        self.calls.fetch_add(1, Ordering::Relaxed);
        let mut acc = 0u64;
        for i in 0..self.spin {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
        ServiceReply::instant(SearchResult::Count(req.expr.len() as u64))
    }
}

/// A counting backend that *blocks* for a fixed duration per call,
/// modelling a real network round-trip. Under a duplicate-miss storm the
/// non-single-flight cache issues one redundant blocked call per thread.
pub struct SleepService {
    calls: AtomicU64,
    sleep: Duration,
}

impl SleepService {
    /// A backend blocking `sleep` per call.
    pub fn new(sleep: Duration) -> Arc<Self> {
        Arc::new(SleepService {
            calls: AtomicU64::new(0),
            sleep,
        })
    }

    /// Number of calls that reached the backend.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

impl SearchService for SleepService {
    fn execute(&self, req: &SearchRequest) -> ServiceReply {
        self.calls.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(self.sleep);
        ServiceReply::instant(SearchResult::Count(req.expr.len() as u64))
    }
}

/// Build the request for key `k`.
pub fn keyed_request(k: usize) -> SearchRequest {
    SearchRequest {
        engine: "AV".into(),
        expr: format!("bench key {k}"),
        kind: RequestKind::Count,
    }
}

/// The contention patterns the fast path is measured under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// A small pre-warmed key set; almost every request is a hit. This is
    /// the steady state of Example 2's repeated identical searches.
    HitHeavy,
    /// Every request is a distinct key: pure insert traffic.
    MissHeavy,
    /// All threads storm the *same* cold keys simultaneously: the
    /// single-flight path. Each distinct key must reach the backend once.
    DuplicateMiss,
}

impl Workload {
    /// All workloads, with their short names.
    pub fn all() -> [(Workload, &'static str); 3] {
        [
            (Workload::HitHeavy, "hit_heavy"),
            (Workload::MissHeavy, "miss_heavy"),
            (Workload::DuplicateMiss, "duplicate_miss"),
        ]
    }
}

/// Number of keys in the hit-heavy working set.
pub const HOT_KEYS: usize = 64;

/// Distinct cold keys in the duplicate-miss storm.
pub const STORM_KEYS: usize = 8;

/// Warm `cache` so a [`Workload::HitHeavy`] run starts from steady state.
pub fn warm_hot_keys(cache: &dyn SearchService) {
    for k in 0..HOT_KEYS {
        cache.execute(&keyed_request(k));
    }
}

/// Run `ops` cache operations per thread across `threads` threads and
/// return the wall time of the contended section (excludes thread spawn,
/// via a start barrier). `round` must differ between invocations so
/// miss-type workloads see cold keys each time.
pub fn run_cache_workload(
    cache: Arc<dyn SearchService>,
    workload: Workload,
    threads: usize,
    ops: usize,
    round: usize,
) -> Duration {
    let barrier = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let cache = cache.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..ops {
                    let req = match workload {
                        Workload::HitHeavy => keyed_request((t * 31 + i) % HOT_KEYS),
                        // Globally unique key per op per round.
                        Workload::MissHeavy => {
                            keyed_request(1_000_000 + round * 1_000_000 + t * ops + i)
                        }
                        // Same small cold key set for every thread.
                        Workload::DuplicateMiss => {
                            keyed_request(500_000_000 + round * 1_000 + i % STORM_KEYS)
                        }
                    };
                    let reply = cache.execute(&req);
                    assert!(reply.result.is_ok());
                }
            })
        })
        .collect();
    // Clock starts before the barrier releases: otherwise the workers
    // race ahead while this thread is rescheduled and short workloads
    // appear to take near-zero time.
    let t0 = Instant::now();
    barrier.wait();
    for h in handles {
        h.join().unwrap();
    }
    t0.elapsed()
}
