//! Shared harness for the WSQ/DSQ experiment binaries.
//!
//! The paper's evaluation (§5) measures *template queries*: structurally
//! identical queries instantiated with different constants so repeated
//! runs issue different searches (avoiding engine-side caching). This
//! crate reproduces that methodology: [`Template`] instantiation,
//! sync-vs-async timing, and paper-style result tables.

pub mod fastpath;

use std::time::{Duration, Instant};
use wsq_core::{ExecutionMode, QueryOptions, Wsq, WsqConfig};
use wsq_websim::{CorpusConfig, LatencyModel};

/// The constant pool templates draw `V1`/`V2` from (§5: "computer",
/// "beaches", "crime", "politics", "frogs", …).
pub fn constant_pool() -> Vec<&'static str> {
    wsq_websim::data::TOPICS.to_vec()
}

/// One of the paper's three evaluation templates (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Template {
    /// `States ⋈ WebCount` with `T2 = V1` (one call per state).
    One,
    /// `States ⋈ WebCount ⋈ WebPages` (two calls per state).
    Two,
    /// `Sigs ⋈ WebPages_AV ⋈ WebPages_Google` with `T2 = V1` (two engine
    /// calls per Sig).
    Three,
}

impl Template {
    /// All three templates.
    pub fn all() -> [Template; 3] {
        [Template::One, Template::Two, Template::Three]
    }

    /// Human-readable name matching Table 1's rows.
    pub fn name(&self) -> &'static str {
        match self {
            Template::One => "Template 1",
            Template::Two => "Template 2",
            Template::Three => "Template 3",
        }
    }

    /// How many constants one instance consumes.
    pub fn arity(&self) -> usize {
        match self {
            Template::Two => 2,
            _ => 1,
        }
    }

    /// Instantiate the template with constants from `pool[offset..]`.
    pub fn instantiate(&self, pool: &[&str], offset: usize) -> String {
        let v = |i: usize| pool[(offset + i) % pool.len()];
        match self {
            Template::One => format!(
                "SELECT Name, Count FROM States, WebCount \
                 WHERE Name = T1 AND WebCount.T2 = '{}'",
                v(0)
            ),
            Template::Two => format!(
                "SELECT Name, Count, URL, Rank \
                 FROM States, WebCount, WebPages \
                 WHERE Name = WebCount.T1 AND WebCount.T2 = '{}' \
                 AND Name = WebPages.T1 AND WebPages.T2 = '{}' \
                 AND WebPages.Rank <= 2",
                v(0),
                v(1)
            ),
            Template::Three => format!(
                "SELECT Name, AV.URL, G.URL \
                 FROM Sigs, WebPages_AV AV, WebPages_Google G \
                 WHERE Name = AV.T1 AND Name = G.T1 \
                 AND AV.Rank <= 3 AND G.Rank <= 3 \
                 AND AV.T2 = '{}' AND G.T2 = '{}'",
                v(0),
                v(0)
            ),
        }
    }

    /// External calls one instance performs (for sanity checks).
    pub fn expected_calls(&self) -> u64 {
        match self {
            Template::One => 50,
            Template::Two => 100,
            Template::Three => 74,
        }
    }
}

/// Experiment-scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct BenchScale {
    /// Simulated base latency per search request.
    pub base_latency: Duration,
    /// Deterministic jitter added on top.
    pub jitter: Duration,
    /// Query instances per run (the paper uses 8).
    pub queries_per_run: usize,
    /// Runs per template (the paper uses 2, with disjoint constants).
    pub runs: usize,
}

impl BenchScale {
    /// Paper-faithful scale: 8 queries × 2 runs, latency scaled ~20×
    /// down from 1999's ~1s per request so the suite finishes in minutes.
    pub fn paper() -> Self {
        BenchScale {
            base_latency: Duration::from_millis(40),
            jitter: Duration::from_millis(25),
            queries_per_run: 8,
            runs: 2,
        }
    }

    /// Quick mode for smoke runs.
    pub fn quick() -> Self {
        BenchScale {
            base_latency: Duration::from_millis(10),
            jitter: Duration::from_millis(5),
            queries_per_run: 3,
            runs: 1,
        }
    }

    /// The latency model this scale implies.
    pub fn latency(&self) -> LatencyModel {
        if self.base_latency.is_zero() && self.jitter.is_zero() {
            LatencyModel::Zero
        } else {
            LatencyModel::Jitter {
                base: self.base_latency,
                jitter: self.jitter,
            }
        }
    }
}

/// Build a WSQ instance for experiments.
pub fn bench_wsq(latency: LatencyModel, corpus: CorpusConfig) -> Wsq {
    let config = WsqConfig {
        corpus,
        latency,
        ..WsqConfig::default()
    };
    let mut wsq = Wsq::open_in_memory(config).expect("bench wsq");
    wsq.load_reference_data().expect("reference data");
    wsq
}

/// Timing for one (template, run): average seconds per query, sync vs
/// async, and the improvement factor — one row of Table 1.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Which template.
    pub template: Template,
    /// Run index (1-based).
    pub run: usize,
    /// Queries measured.
    pub queries: usize,
    /// Average synchronous execution seconds.
    pub sync_avg: f64,
    /// Average asynchronous execution seconds.
    pub async_avg: f64,
}

impl RunResult {
    /// The paper's "Improvement" column.
    pub fn improvement(&self) -> f64 {
        self.sync_avg / self.async_avg.max(1e-9)
    }
}

/// Time one query under the given mode, returning (seconds, rows).
pub fn time_query(wsq: &mut Wsq, sql: &str, mode: ExecutionMode) -> (f64, usize) {
    let opts = QueryOptions {
        mode,
        ..Default::default()
    };
    let t0 = Instant::now();
    let result = wsq.query_with(sql, opts).expect("bench query");
    (t0.elapsed().as_secs_f64(), result.rows.len())
}

/// Execute one full run of a template (the paper's "Run N (8 queries)").
pub fn run_template(
    wsq: &mut Wsq,
    template: Template,
    run: usize,
    scale: &BenchScale,
) -> RunResult {
    let pool = constant_pool();
    // Run 2 uses a disjoint slice of the constant pool ("8 other queries").
    let offset = (run - 1) * scale.queries_per_run * template.arity();
    let mut sync_total = 0.0;
    let mut async_total = 0.0;
    for q in 0..scale.queries_per_run {
        let sql = template.instantiate(&pool, offset + q * template.arity());
        let (sync_s, sync_rows) = time_query(wsq, &sql, ExecutionMode::Synchronous);
        let (async_s, async_rows) = time_query(wsq, &sql, ExecutionMode::Asynchronous);
        assert_eq!(sync_rows, async_rows, "mode divergence on {sql}");
        sync_total += sync_s;
        async_total += async_s;
    }
    RunResult {
        template,
        run,
        queries: scale.queries_per_run,
        sync_avg: sync_total / scale.queries_per_run as f64,
        async_avg: async_total / scale.queries_per_run as f64,
    }
}

/// Render results in the layout of the paper's Table 1.
pub fn render_table1(results: &[RunResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24}{:>20}{:>22}{:>14}\n",
        "", "Synchronous (secs)", "Asynchronous (secs)", "Improvement"
    ));
    let mut last: Option<Template> = None;
    for r in results {
        if last != Some(r.template) {
            out.push_str(&format!("{}\n", r.template.name()));
            last = Some(r.template);
        }
        out.push_str(&format!(
            "{:<24}{:>20.3}{:>22.3}{:>13.1}x\n",
            format!("  Run {} ({} queries)", r.run, r.queries),
            r.sync_avg,
            r.async_avg,
            r.improvement()
        ));
    }
    out
}

/// The numbers reported in the paper's Table 1, for side-by-side output:
/// `(row, sync secs, async secs, improvement)`.
pub fn paper_table1() -> Vec<(&'static str, f64, f64, f64)> {
    vec![
        ("Template 1 / Run 1", 23.13, 3.88, 6.0),
        ("Template 1 / Run 2", 32.8, 3.5, 9.4),
        ("Template 2 / Run 1", 70.75, 5.25, 13.5),
        ("Template 2 / Run 2", 64.25, 5.13, 12.5),
        ("Template 3 / Run 1", 122.5, 6.25, 19.6),
        ("Template 3 / Run 2", 76.13, 4.63, 16.4),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn templates_instantiate_distinct_queries() {
        let pool = constant_pool();
        for t in Template::all() {
            let a = t.instantiate(&pool, 0);
            let b = t.instantiate(&pool, t.arity());
            assert_ne!(a, b, "{t:?} should vary with offset");
            assert!(a.contains("SELECT"));
        }
    }

    #[test]
    fn template_queries_parse() {
        let pool = constant_pool();
        for t in Template::all() {
            for off in 0..4 {
                let sql = t.instantiate(&pool, off);
                wsq_sql::parse_one(&sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
            }
        }
    }

    #[test]
    fn zero_latency_run_produces_sane_numbers() {
        let mut wsq = bench_wsq(LatencyModel::Zero, CorpusConfig::small());
        let scale = BenchScale {
            base_latency: Duration::ZERO,
            jitter: Duration::ZERO,
            queries_per_run: 2,
            runs: 1,
        };
        let r = run_template(&mut wsq, Template::One, 1, &scale);
        assert!(r.sync_avg >= 0.0 && r.async_avg > 0.0);
        let text = render_table1(&[r]);
        assert!(text.contains("Template 1"));
        assert!(text.contains("Run 1"));
    }

    #[test]
    fn expected_call_counts_hold() {
        let mut wsq = bench_wsq(LatencyModel::Zero, CorpusConfig::small());
        let pool = constant_pool();
        for t in Template::all() {
            let before = wsq.pump().stats().registered;
            let sql = t.instantiate(&pool, 0);
            time_query(&mut wsq, &sql, ExecutionMode::Asynchronous);
            let after = wsq.pump().stats().registered;
            assert_eq!(after - before, t.expected_calls(), "{t:?}");
        }
    }
}
